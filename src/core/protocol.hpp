// Wire protocol of a running Phish job.
//
// One numbering shared by every transport (simulated, loopback, UDP):
//   * one-way datagrams for dataflow (argument sends), control broadcasts
//     (shutdown, death notices), migration, heartbeats, buffered I/O, and
//     stats reports;
//   * RPC methods for interactions that need a reply (registration,
//     membership updates, steal requests, and the macro scheduler's job
//     traffic).
//
// Everything here is plain encode/decode; behaviour lives in the
// Clearinghouse, the workers, and the JobQ.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/closure.hpp"
#include "core/worker_stats.hpp"
#include "net/address.hpp"

namespace phish::proto {

// ---- One-way message types (must stay below net::kRpcTypeBase). ----
constexpr std::uint16_t kArgument = 1;     // ArgumentMsg: dataflow send
constexpr std::uint16_t kShutdown = 2;     // (empty) job finished, stop
constexpr std::uint16_t kHeartbeat = 3;    // (empty) worker liveness
constexpr std::uint16_t kDead = 4;         // DeadMsg: participant crashed
constexpr std::uint16_t kMigrate = 5;      // MigrateMsg: closures moving in
constexpr std::uint16_t kStatsReport = 6;  // StatsMsg: final per-worker stats
constexpr std::uint16_t kIo = 7;           // IoMsg: application output line

// ---- RPC method ids. ----
constexpr std::uint16_t kRpcRegister = 1;    // worker -> clearinghouse
constexpr std::uint16_t kRpcUnregister = 2;  // worker -> clearinghouse
constexpr std::uint16_t kRpcUpdate = 3;      // worker -> clearinghouse
constexpr std::uint16_t kRpcSteal = 4;       // thief -> victim
// Job result delivery is an RPC (not a one-way datagram) so it survives
// message loss: the sender retransmits until the Clearinghouse acknowledges.
constexpr std::uint16_t kRpcResult = 5;      // worker -> clearinghouse
// Control-plane replication and reliable notifications.  Death notices used
// to ride raw kDead oneways: one dropped datagram left a peer forever
// unaware a participant died.  kRpcControl puts them (and new-primary
// announcements) on the acked, retransmitting RPC path.
constexpr std::uint16_t kRpcChDelta = 6;     // primary ch -> standby ch
constexpr std::uint16_t kRpcControl = 7;     // clearinghouse -> worker
// Migration durability (DESIGN.md failure matrix: migrate-then-crash).
// Cargo delivery is an acked RPC — the departing worker retransmits until a
// successor confirms installation — and the Clearinghouse keeps a migration
// ledger (registered before delivery, holder updated after) so a crash of
// either end re-delivers or redoes the cargo instead of stranding it.
constexpr std::uint16_t kRpcMigrate = 8;        // migrator -> successor
constexpr std::uint16_t kRpcMigrateLedger = 9;  // migrator -> clearinghouse

// Macro level (PhishJobQ / PhishJobD).
constexpr std::uint16_t kRpcSubmitJob = 10;   // user -> jobq
constexpr std::uint16_t kRpcRequestJob = 11;  // jobmanager -> jobq
constexpr std::uint16_t kRpcJobDone = 12;     // clearinghouse -> jobq
// Fair-share accounting and priority preemption (DESIGN.md §11).  A manager
// releases its workstation grant when its worker terminates; the JobQ evicts
// a workstation from a low-priority job by asking its manager to preempt
// (the worker migrates its tasks out first — the paper's case (d) path).
constexpr std::uint16_t kRpcReleaseJob = 13;  // jobmanager -> jobq
constexpr std::uint16_t kRpcPreempt = 14;     // jobq -> jobmanager

// ---- Payloads. ----

struct ArgumentMsg {
  ContRef cont;
  Value value;
  /// Forwarding budget.  A departed worker's stub forwards arguments to its
  /// migration successor; once rejoined workers keep residual stubs, two
  /// nodes could in principle bounce an unknown-closure argument between
  /// each other forever.  Each forward hop decrements ttl; at 0 the message
  /// is dead-lettered instead of forwarded.
  std::uint8_t ttl = 8;

  Bytes encode() const {
    Writer w;
    cont.encode(w);
    value.encode(w);
    w.u8(ttl);
    return w.take();
  }
  static std::optional<ArgumentMsg> decode(const Bytes& b) {
    Reader r(b);
    ArgumentMsg m;
    m.cont = ContRef::decode(r);
    m.value = Value::decode(r);
    m.ttl = r.u8();
    if (!r.ok() || !r.done()) return std::nullopt;
    return m;
  }
};

struct DeadMsg {
  net::NodeId who;

  Bytes encode() const {
    Writer w;
    w.u32(who.value);
    return w.take();
  }
  static std::optional<DeadMsg> decode(const Bytes& b) {
    Reader r(b);
    DeadMsg m;
    m.who = net::NodeId{r.u32()};
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// One steal-ledger entry travelling with a migration: the migrator's redo
/// snapshot for a task stolen by `thief`.  The successor adopts it into its
/// own steal ledger so a later death of the thief still triggers redo even
/// though the original victim has departed.
struct MigrantLedgerEntry {
  net::NodeId thief;
  Closure snapshot;

  void encode(Writer& w) const {
    w.u32(thief.value);
    snapshot.encode(w);
  }
  static MigrantLedgerEntry decode(Reader& r) {
    MigrantLedgerEntry e;
    e.thief = net::NodeId{r.u32()};
    e.snapshot = Closure::decode(r);
    return e;
  }
};

struct MigrateMsg {
  net::NodeId from;
  std::vector<Closure> closures;
  /// Migration id minted by the origin ((origin << 32) | seq).  Receivers
  /// dedupe installs by id, so retransmits and Clearinghouse re-deliveries
  /// are idempotent.  0 = unledgered migration (dead-letter forwarding).
  std::uint64_t migration_id = 0;
  /// Set when the Clearinghouse re-delivers ledgered cargo after the
  /// previous holder died (counts as migration redo, not a fresh migration).
  bool redelivery = false;
  /// The migrator's outstanding steal-ledger entries (see above).
  std::vector<MigrantLedgerEntry> ledger;

  Bytes encode() const {
    Writer w;
    w.u32(from.value);
    w.u32(static_cast<std::uint32_t>(closures.size()));
    for (const Closure& c : closures) c.encode(w);
    w.u64(migration_id);
    w.boolean(redelivery);
    w.u32(static_cast<std::uint32_t>(ledger.size()));
    for (const MigrantLedgerEntry& e : ledger) e.encode(w);
    return w.take();
  }
  static std::optional<MigrateMsg> decode(const Bytes& b) {
    Reader r(b);
    MigrateMsg m;
    m.from = net::NodeId{r.u32()};
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > (1u << 24)) return std::nullopt;
    m.closures.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Closure c = Closure::decode(r);
      if (!r.ok()) return std::nullopt;  // truncated or structurally invalid
      m.closures.push_back(std::move(c));
    }
    m.migration_id = r.u64();
    m.redelivery = r.boolean();
    const std::uint32_t nl = r.u32();
    if (!r.ok() || nl > (1u << 24)) return std::nullopt;
    m.ledger.reserve(nl);
    for (std::uint32_t i = 0; i < nl; ++i) {
      MigrantLedgerEntry e = MigrantLedgerEntry::decode(r);
      if (!r.ok()) return std::nullopt;
      m.ledger.push_back(std::move(e));
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// kRpcMigrateLedger: the migration durability ledger entry a departing
/// worker registers at the Clearinghouse *before* handing its cargo to a
/// successor, and updates (empty cargo, new holder) *after* the successor
/// acknowledged installation.  While `holder` is the migrator itself the
/// cargo snapshot lives here; once the holder moves to the successor the
/// closures run there and this entry is only the redo record consulted when
/// the holder later dies.
struct MigrationLedgerMsg {
  std::uint64_t migration_id = 0;
  net::NodeId from;    // the departing (origin) worker
  net::NodeId holder;  // who currently owns the cargo
  std::vector<Closure> closures;            // cargo snapshot (register only)
  std::vector<MigrantLedgerEntry> ledger;   // migrator's steal-ledger export

  Bytes encode() const {
    Writer w;
    w.u64(migration_id);
    w.u32(from.value);
    w.u32(holder.value);
    w.u32(static_cast<std::uint32_t>(closures.size()));
    for (const Closure& c : closures) c.encode(w);
    w.u32(static_cast<std::uint32_t>(ledger.size()));
    for (const MigrantLedgerEntry& e : ledger) e.encode(w);
    return w.take();
  }
  static std::optional<MigrationLedgerMsg> decode(const Bytes& b) {
    Reader r(b);
    MigrationLedgerMsg m;
    m.migration_id = r.u64();
    m.from = net::NodeId{r.u32()};
    m.holder = net::NodeId{r.u32()};
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > (1u << 24)) return std::nullopt;
    m.closures.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Closure c = Closure::decode(r);
      if (!r.ok()) return std::nullopt;
      m.closures.push_back(std::move(c));
    }
    const std::uint32_t nl = r.u32();
    if (!r.ok() || nl > (1u << 24)) return std::nullopt;
    m.ledger.reserve(nl);
    for (std::uint32_t i = 0; i < nl; ++i) {
      MigrantLedgerEntry e = MigrantLedgerEntry::decode(r);
      if (!r.ok()) return std::nullopt;
      m.ledger.push_back(std::move(e));
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct StatsMsg {
  net::NodeId who;
  WorkerStats stats;
  std::uint64_t start_ns = 0;  // when the participant joined
  std::uint64_t end_ns = 0;    // when it finished/left

  Bytes encode() const {
    Writer w;
    w.u32(who.value);
    stats.encode(w);
    w.u64(start_ns);
    w.u64(end_ns);
    return w.take();
  }
  static std::optional<StatsMsg> decode(const Bytes& b) {
    Reader r(b);
    StatsMsg m;
    m.who = net::NodeId{r.u32()};
    m.stats = WorkerStats::decode(r);
    m.start_ns = r.u64();
    m.end_ns = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct IoMsg {
  net::NodeId who;
  std::string text;

  Bytes encode() const {
    Writer w;
    w.u32(who.value);
    w.str(text);
    return w.take();
  }
  static std::optional<IoMsg> decode(const Bytes& b) {
    Reader r(b);
    IoMsg m;
    m.who = net::NodeId{r.u32()};
    m.text = r.str();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// Membership snapshot returned by register/update RPCs when the caller
/// presented no epoch (legacy full snapshot; see MembershipUpdate for the
/// delta path sustained churn rides).
struct Membership {
  std::uint64_t epoch = 0;
  std::vector<net::NodeId> participants;

  Bytes encode() const {
    Writer w;
    w.u64(epoch);
    w.u32(static_cast<std::uint32_t>(participants.size()));
    for (net::NodeId p : participants) w.u32(p.value);
    return w.take();
  }
  static std::optional<Membership> decode(const Bytes& b) {
    Reader r(b);
    Membership m;
    m.epoch = r.u64();
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > (1u << 20)) return std::nullopt;
    m.participants.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      m.participants.push_back(net::NodeId{r.u32()});
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// Delta-capable membership reply (sustained churn).  Returned by
/// kRpcRegister / kRpcUpdate *only* when the caller presented a nonzero
/// known epoch, so both ends always agree on the encoding.  When the
/// Clearinghouse's bounded change log still covers [since_epoch+1, epoch],
/// the reply carries just the joins and leaves in that window — O(churn)
/// instead of O(P) per refresh, which is what keeps a register storm from
/// amplifying into a membership-snapshot storm.  Otherwise `full` is set
/// and `participants` carries the whole snapshot as a fallback.
struct MembershipUpdate {
  std::uint64_t epoch = 0;
  bool full = false;
  std::vector<net::NodeId> participants;  // full snapshot when `full`
  std::vector<net::NodeId> joined;        // delta when !`full`
  std::vector<net::NodeId> left;

  Bytes encode() const {
    Writer w;
    w.u64(epoch);
    w.boolean(full);
    const auto put = [&w](const std::vector<net::NodeId>& v) {
      w.u32(static_cast<std::uint32_t>(v.size()));
      for (net::NodeId p : v) w.u32(p.value);
    };
    put(participants);
    put(joined);
    put(left);
    return w.take();
  }
  static std::optional<MembershipUpdate> decode(const Bytes& b) {
    Reader r(b);
    MembershipUpdate m;
    m.epoch = r.u64();
    m.full = r.boolean();
    const auto get = [&r](std::vector<net::NodeId>& v) {
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > (1u << 20)) return false;
      v.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) v.push_back(net::NodeId{r.u32()});
      return true;
    };
    if (!get(m.participants) || !get(m.joined) || !get(m.left)) {
      return std::nullopt;
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// kRpcUpdate request arguments.  An empty payload (the legacy request)
/// decodes as since_epoch 0 and gets a full Membership snapshot back;
/// since_epoch > 0 asks for a MembershipUpdate delta.
struct UpdateRequest {
  std::uint64_t since_epoch = 0;

  Bytes encode() const {
    Writer w;
    w.u64(since_epoch);
    return w.take();
  }
  static std::optional<UpdateRequest> decode(const Bytes& b) {
    UpdateRequest m;
    if (b.empty()) return m;  // legacy full-snapshot request
    Reader r(b);
    m.since_epoch = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// Steal RPC: request carries the thief's id and how many tasks it will
/// accept; the reply carries up to that many closures (the victim also caps
/// the batch at half its ready list — steal-half — and at
/// WorkerCore::kMaxStealBatch).
struct StealRequest {
  net::NodeId thief;
  std::uint16_t max_tasks = 1;

  Bytes encode() const {
    Writer w;
    w.u32(thief.value);
    w.u16(max_tasks);
    return w.take();
  }
  static std::optional<StealRequest> decode(const Bytes& b) {
    Reader r(b);
    StealRequest m;
    m.thief = net::NodeId{r.u32()};
    m.max_tasks = r.u16();
    if (!r.done() || m.max_tasks == 0) return std::nullopt;
    return m;
  }
};

/// Registration arguments.  An empty payload decodes as incarnation 1, so
/// pre-failover senders stay wire-compatible.  A worker that rejoins a
/// running job after a crash registers with a higher incarnation; the
/// Clearinghouse treats a re-registration with a newer incarnation as proof
/// the old incarnation died (declare-dead + redo broadcast) before admitting
/// the new one.
struct RegisterMsg {
  std::uint32_t incarnation = 1;
  /// Last membership epoch this worker applied (0 = none).  Nonzero asks
  /// the Clearinghouse to reply with a MembershipUpdate delta instead of a
  /// full snapshot — the rejoin path's O(P) cost under sustained churn.
  std::uint64_t known_epoch = 0;

  Bytes encode() const {
    Writer w;
    w.u32(incarnation);
    w.u64(known_epoch);
    return w.take();
  }
  static std::optional<RegisterMsg> decode(const Bytes& b) {
    RegisterMsg m;
    if (b.empty()) return m;  // legacy empty registration
    Reader r(b);
    m.incarnation = r.u32();
    if (r.ok() && !r.done()) m.known_epoch = r.u64();  // pre-churn: 4 bytes
    if (!r.done() || m.incarnation == 0) return std::nullopt;
    return m;
  }
};

/// Reliable control notification (rides kRpcControl, so it retransmits until
/// acknowledged).  One message type for the clearinghouse-to-worker control
/// plane: death notices and new-primary announcements.
struct ControlMsg {
  enum Kind : std::uint8_t {
    kDeadNotice = 1,  // `who` was declared dead: redo its stolen work
    kNewPrimary = 2,  // `who` is the acting Clearinghouse as of `view`
    // Migration cargo was re-delivered to `who` after the previous holder
    // died: the departed origin's stub must re-target its forwarding and
    // replay its logged post-drain argument fills at the new holder.
    kReroute = 3,
    // Ledger entry `view` was retired (its holder gracefully finished the
    // cargo, or a superseding drain re-snapshotted it); `who` is the origin
    // being notified.  The origin's stub may stop retaining the fill log it
    // kept for a kReroute replay once none of its migrations remain
    // outstanding.  Purely a memory/traffic optimisation — a lost notice
    // only means the log is retained longer.
    kMigrationRetired = 4,
  };
  std::uint8_t kind = kDeadNotice;
  net::NodeId who;
  /// kNewPrimary: promotion view / kReroute, kMigrationRetired: mig id.
  std::uint64_t view = 0;

  Bytes encode() const {
    Writer w;
    w.u8(kind);
    w.u32(who.value);
    w.u64(view);
    return w.take();
  }
  static std::optional<ControlMsg> decode(const Bytes& b) {
    Reader r(b);
    ControlMsg m;
    m.kind = r.u8();
    m.who = net::NodeId{r.u32()};
    m.view = r.u64();
    if (!r.done()) return std::nullopt;
    if (m.kind != kDeadNotice && m.kind != kNewPrimary &&
        m.kind != kReroute && m.kind != kMigrationRetired) {
      return std::nullopt;
    }
    return m;
  }
};

/// Epoch-numbered control-plane state delta, primary -> standby.  Small
/// state (membership, dead list, result) travels as a full snapshot every
/// delta; unbounded logs (I/O, stats reports) travel as tails past the
/// standby's acknowledged watermark, which the reply carries back.
struct ChDeltaMsg {
  std::uint64_t seq = 0;    // monotone replication sequence number
  std::uint64_t view = 0;   // sender's primary view (fencing)
  std::uint64_t epoch = 0;  // membership epoch at the primary
  std::vector<net::NodeId> participants;
  std::vector<net::NodeId> dead;
  std::optional<Value> result;
  std::uint64_t io_base = 0;  // index of io[0] in the primary's full log
  std::vector<IoMsg> io;
  std::uint64_t stats_base = 0;
  std::vector<StatsMsg> stats;
  /// Migration durability ledger snapshot (small: one entry per in-flight
  /// or completed-but-unretired migration), so a promoted standby can keep
  /// re-delivering cargo when holders die after the old primary did.
  std::vector<MigrationLedgerMsg> migrations;

  Bytes encode() const {
    Writer w;
    w.u64(seq);
    w.u64(view);
    w.u64(epoch);
    w.u32(static_cast<std::uint32_t>(participants.size()));
    for (net::NodeId p : participants) w.u32(p.value);
    w.u32(static_cast<std::uint32_t>(dead.size()));
    for (net::NodeId d : dead) w.u32(d.value);
    w.boolean(result.has_value());
    if (result) result->encode(w);
    w.u64(io_base);
    w.u32(static_cast<std::uint32_t>(io.size()));
    for (const IoMsg& m : io) {
      const Bytes b = m.encode();
      w.blob(b.data(), b.size());
    }
    w.u64(stats_base);
    w.u32(static_cast<std::uint32_t>(stats.size()));
    for (const StatsMsg& m : stats) {
      const Bytes b = m.encode();
      w.blob(b.data(), b.size());
    }
    w.u32(static_cast<std::uint32_t>(migrations.size()));
    for (const MigrationLedgerMsg& m : migrations) {
      const Bytes b = m.encode();
      w.blob(b.data(), b.size());
    }
    return w.take();
  }
  static std::optional<ChDeltaMsg> decode(const Bytes& b) {
    Reader r(b);
    ChDeltaMsg m;
    m.seq = r.u64();
    m.view = r.u64();
    m.epoch = r.u64();
    const std::uint32_t np = r.u32();
    if (!r.ok() || np > (1u << 20)) return std::nullopt;
    m.participants.reserve(np);
    for (std::uint32_t i = 0; i < np; ++i) {
      m.participants.push_back(net::NodeId{r.u32()});
    }
    const std::uint32_t nd = r.u32();
    if (!r.ok() || nd > (1u << 20)) return std::nullopt;
    m.dead.reserve(nd);
    for (std::uint32_t i = 0; i < nd; ++i) {
      m.dead.push_back(net::NodeId{r.u32()});
    }
    if (r.boolean()) m.result = Value::decode(r);
    m.io_base = r.u64();
    const std::uint32_t nio = r.u32();
    if (!r.ok() || nio > (1u << 24)) return std::nullopt;
    for (std::uint32_t i = 0; i < nio; ++i) {
      auto io = IoMsg::decode(r.blob());
      if (!io) return std::nullopt;
      m.io.push_back(std::move(*io));
    }
    m.stats_base = r.u64();
    const std::uint32_t ns = r.u32();
    if (!r.ok() || ns > (1u << 24)) return std::nullopt;
    for (std::uint32_t i = 0; i < ns; ++i) {
      auto s = StatsMsg::decode(r.blob());
      if (!s) return std::nullopt;
      m.stats.push_back(std::move(*s));
    }
    const std::uint32_t nm = r.u32();
    if (!r.ok() || nm > (1u << 20)) return std::nullopt;
    for (std::uint32_t i = 0; i < nm; ++i) {
      auto mig = MigrationLedgerMsg::decode(r.blob());
      if (!mig) return std::nullopt;
      m.migrations.push_back(std::move(*mig));
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// Reply to kRpcChDelta: the standby's applied watermarks, plus its role so
/// a healed old primary discovers it has been superseded (view fencing).
struct ChDeltaAck {
  std::uint64_t applied_seq = 0;
  std::uint64_t io_count = 0;     // io entries the standby now holds
  std::uint64_t stats_count = 0;  // stats reports the standby now holds
  std::uint64_t view = 0;         // standby's current view
  bool promoted = false;          // standby considers itself primary

  Bytes encode() const {
    Writer w;
    w.u64(applied_seq);
    w.u64(io_count);
    w.u64(stats_count);
    w.u64(view);
    w.boolean(promoted);
    return w.take();
  }
  static std::optional<ChDeltaAck> decode(const Bytes& b) {
    Reader r(b);
    ChDeltaAck m;
    m.applied_seq = r.u64();
    m.io_count = r.u64();
    m.stats_count = r.u64();
    m.view = r.u64();
    m.promoted = r.boolean();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct StealReply {
  std::vector<Closure> tasks;

  bool empty() const noexcept { return tasks.empty(); }

  Bytes encode() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(tasks.size()));
    for (const Closure& c : tasks) c.encode(w);
    return w.take();
  }
  static std::optional<StealReply> decode(const Bytes& b) {
    Reader r(b);
    StealReply m;
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > (1u << 16)) return std::nullopt;
    m.tasks.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Closure c = Closure::decode(r);
      // Closure::decode fails the reader on truncated or structurally
      // absurd payloads; bail before installing garbage.
      if (!r.ok()) return std::nullopt;
      m.tasks.push_back(std::move(c));
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// kRpcReleaseJob: a PhishJobManager tells the JobQ its workstation no
/// longer runs a worker for `job_id` (terminated, finished, or preempted),
/// so the fair-share ledger can hand the workstation to another tenant.
struct ReleaseJobMsg {
  std::uint64_t job_id = 0;

  Bytes encode() const {
    Writer w;
    w.u64(job_id);
    return w.take();
  }
  static std::optional<ReleaseJobMsg> decode(const Bytes& b) {
    Reader r(b);
    ReleaseJobMsg m;
    m.job_id = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// kRpcPreempt: the JobQ asks a PhishJobManager to evict its running worker
/// for `victim_job` so the workstation can serve the higher-priority
/// `for_job`.  The manager replies boolean: true = eviction initiated.
struct PreemptMsg {
  std::uint64_t victim_job = 0;
  std::uint64_t for_job = 0;

  Bytes encode() const {
    Writer w;
    w.u64(victim_job);
    w.u64(for_job);
    return w.take();
  }
  static std::optional<PreemptMsg> decode(const Bytes& b) {
    Reader r(b);
    PreemptMsg m;
    m.victim_job = r.u64();
    m.for_job = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

}  // namespace phish::proto
