// Worker-side view of a replicated Clearinghouse.
//
// Workers know the full replica ring up front (it is part of the job
// configuration, like the primary's address always was).  All
// clearinghouse-bound traffic funnels through this class:
//
//   * call()            — RPC to the current primary with bounded failover:
//                         a failed call advances to the next replica and
//                         retries, for at most two full rounds of the ring,
//                         so workers transparently re-resolve a promoted
//                         standby without any name service;
//   * send_oneway_all() — heartbeats go to every replica, so the standby's
//                         liveness map is warm the instant it promotes
//                         (otherwise promotion would be followed by a wave
//                         of false deaths);
//   * adopt()           — apply a kNewPrimary announcement, view-fenced so a
//                         stale announcement from a demoted primary cannot
//                         roll the ring backwards.
//
// Thread-safe; completions run on whatever thread the RpcNode uses.
#pragma once

#include <mutex>
#include <vector>

#include "net/rpc.hpp"

namespace phish {

class ClearinghouseClient {
 public:
  ClearinghouseClient(net::RpcNode& rpc, std::vector<net::NodeId> replicas);

  /// The replica currently believed to be primary.
  net::NodeId current() const;
  /// The highest coordinator view this client has adopted.
  std::uint64_t view() const;
  bool is_replica(net::NodeId n) const;
  const std::vector<net::NodeId>& replicas() const { return replicas_; }

  /// Adopt `primary` as coordinator if `view` is newer than what we hold.
  /// Returns true when the current primary changed.
  bool adopt(net::NodeId primary, std::uint64_t view);

  /// RPC to the current primary; on failure rotate through the ring, giving
  /// up (and firing on_done with the failure) after 2 * ring size attempts.
  void call(std::uint16_t method, Bytes args, net::RpcNode::Completion on_done,
            net::RetryPolicy policy);

  /// Lossy oneway to the current primary (I/O, stats).
  void send_oneway(std::uint16_t type, Bytes payload);
  /// Lossy oneway to every replica (heartbeats).
  void send_oneway_all(std::uint16_t type, const Bytes& payload);

 private:
  void call_attempt(std::uint16_t method, Bytes args,
                    net::RpcNode::Completion on_done, net::RetryPolicy policy,
                    int tries_left);
  /// Rotate past `failed` unless another thread already advanced the ring.
  void advance_past(net::NodeId failed);

  net::RpcNode& rpc_;
  const std::vector<net::NodeId> replicas_;
  mutable std::mutex mutex_;
  std::size_t index_ = 0;
  std::uint64_t view_ = 1;  // the original primary serves view 1
};

}  // namespace phish
