#include "core/ready_deque.hpp"

namespace phish {

Closure* ReadyDeque::remove(const ClosureId& id) noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    Closure* c = at(i);
    if (c->id != id) continue;
    // Close the gap toward the head (removal is rare: fault recovery only).
    for (std::size_t j = i; j > 0; --j) {
      buf_[(head_ + j) & mask_()] = buf_[(head_ + j - 1) & mask_()];
    }
    head_ = (head_ + 1) & mask_();
    --count_;
    return c;
  }
  return nullptr;
}

void ReadyDeque::grow_() {
  std::vector<Closure*> bigger(buf_.size() * 2);
  for (std::size_t i = 0; i < count_; ++i) bigger[i] = at(i);
  buf_ = std::move(bigger);
  head_ = 0;
}

}  // namespace phish
