#include "core/ready_deque.hpp"

#include <algorithm>

namespace phish {

bool ReadyDeque::remove(const ClosureId& id) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(),
                         [&](const Closure& c) { return c.id == id; });
  if (it == tasks_.end()) return false;
  tasks_.erase(it);
  return true;
}

}  // namespace phish
