#include "core/value.hpp"

namespace phish {

void Value::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind()));
  switch (kind()) {
    case Kind::kNil:
      break;
    case Kind::kInt:
      w.i64(int_);
      break;
    case Kind::kDouble:
      w.f64(double_);
      break;
    case Kind::kBlob: {
      const Bytes& b = blob_;
      w.blob(b.data(), b.size());
      break;
    }
  }
}

Value Value::decode(Reader& r) {
  switch (static_cast<Kind>(r.u8())) {
    case Kind::kNil:
      return Value();
    case Kind::kInt:
      return Value(r.i64());
    case Kind::kDouble:
      return Value(r.f64());
    case Kind::kBlob:
      return Value(r.blob());
  }
  r.fail();  // unknown kind byte: the buffer is not a Value encoding
  return Value();
}

std::size_t Value::byte_size() const noexcept {
  switch (kind()) {
    case Kind::kNil:
      return 1;
    case Kind::kInt:
    case Kind::kDouble:
      return 9;
    case Kind::kBlob:
      return 5 + blob_.size();
  }
  return 1;
}

std::string Value::to_string() const {
  switch (kind()) {
    case Kind::kNil:
      return "nil";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return std::to_string(double_);
    case Kind::kBlob:
      return "blob[" + std::to_string(blob_.size()) + "]";
  }
  return "?";
}

}  // namespace phish
