#include "core/value.hpp"

namespace phish {

void Value::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind()));
  switch (kind()) {
    case Kind::kNil:
      break;
    case Kind::kInt:
      w.i64(std::get<std::int64_t>(data_));
      break;
    case Kind::kDouble:
      w.f64(std::get<double>(data_));
      break;
    case Kind::kBlob: {
      const Bytes& b = std::get<Bytes>(data_);
      w.blob(b.data(), b.size());
      break;
    }
  }
}

Value Value::decode(Reader& r) {
  switch (static_cast<Kind>(r.u8())) {
    case Kind::kNil:
      return Value();
    case Kind::kInt:
      return Value(r.i64());
    case Kind::kDouble:
      return Value(r.f64());
    case Kind::kBlob:
      return Value(r.blob());
  }
  return Value();  // malformed kind byte; reader is already failed or garbage
}

std::size_t Value::byte_size() const noexcept {
  switch (kind()) {
    case Kind::kNil:
      return 1;
    case Kind::kInt:
    case Kind::kDouble:
      return 9;
    case Kind::kBlob:
      return 5 + std::get<Bytes>(data_).size();
  }
  return 1;
}

std::string Value::to_string() const {
  switch (kind()) {
    case Kind::kNil:
      return "nil";
    case Kind::kInt:
      return std::to_string(std::get<std::int64_t>(data_));
    case Kind::kDouble:
      return std::to_string(std::get<double>(data_));
    case Kind::kBlob:
      return "blob[" + std::to_string(std::get<Bytes>(data_).size()) + "]";
  }
  return "?";
}

}  // namespace phish
