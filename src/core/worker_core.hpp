// WorkerCore: the micro-level scheduler's per-participant state machine.
//
// One WorkerCore is the paper's "participating process" seen from the inside:
// the ready-task list (LIFO execution / FIFO steals), the table of waiting
// closures (tasks whose synchronization requirements are not yet met), the
// steal ledger used for fault-tolerant redo, and the Table-2 statistics.
//
// WorkerCore is deliberately runtime-agnostic: it never blocks, never sleeps,
// and touches the outside world only through Hooks.  The threads runtime
// drives many WorkerCores from std::threads (remote sends become direct
// deliveries into the target core), the simulated-distributed runtime drives
// them from simulator events with messages on the SimNetwork, and the UDP
// runtime drives them from real sockets.  External synchronization is the
// runtime's job; WorkerCore itself is not thread-safe.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ready_deque.hpp"
#include "core/task_registry.hpp"
#include "core/worker_stats.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish {

class Context;

class WorkerCore {
 public:
  struct Hooks {
    /// Deliver an argument whose target closure lives on another worker.
    /// Required.
    std::function<void(const ContRef&, Value)> send_remote;
    /// Application output (Context::print).  The distributed runtimes route
    /// it to the Clearinghouse ("workers can perform I/O through the
    /// Clearinghouse, so a user need only watch the Clearinghouse to see job
    /// output").  Optional; defaults to stdout.
    std::function<void(const std::string&)> emit_io;
  };

  WorkerCore(net::NodeId me, const TaskRegistry& registry, Hooks hooks,
             ExecOrder exec_order = ExecOrder::kLifo,
             StealOrder steal_order = StealOrder::kFifo);

  net::NodeId id() const noexcept { return me_; }
  const TaskRegistry& registry() const noexcept { return registry_; }

  // ---- Task-facing operations (called by tasks through Context). ----

  /// Create a ready closure and push it at the head of the ready list.
  void spawn(TaskId task, std::vector<Value> args, ContRef cont,
             std::uint32_t depth);

  /// Create a waiting closure with `nslots` empty argument slots.  It becomes
  /// ready when all slots are filled.
  ClosureId create_waiting(TaskId task, std::uint16_t nslots, ContRef cont,
                           std::uint32_t depth);

  /// Continuation reference to slot `slot` of a closure created here.
  ContRef slot_ref(const ClosureId& id, std::uint16_t slot) const {
    return ContRef{id, slot, me_};
  }

  /// Send an argument to a continuation.  Local targets are filled in place
  /// (a *local* synchronization); remote targets go through
  /// Hooks::send_remote (a *non-local* synchronization).
  void send_argument(const ContRef& cont, Value value);

  // ---- Scheduler-facing operations (called by the runtime). ----

  /// Pop the next task for local execution (head of the list under LIFO).
  std::optional<Closure> pop_for_execution();

  /// Execute a popped closure: runs the task function with a Context bound to
  /// this core.  Frees the closure afterwards.
  void execute(Closure& closure);

  /// Victim side of a steal: surrender the tail task, recording it in the
  /// steal ledger for possible redo if the thief later crashes.
  /// `thief` identifies who is taking it.
  std::optional<Closure> try_steal(net::NodeId thief);

  /// Thief side of a steal: install a stolen closure for execution.
  void install_stolen(Closure closure);

  /// Thief-side bookkeeping shared by all runtimes: a steal request left
  /// this worker / a request came back empty.  Counts the stat and traces
  /// the event, so runtimes don't hand-roll either.
  void note_steal_request_sent();
  void note_steal_failed();

  /// Deliver an argument that arrived from the network for a closure hosted
  /// here.
  enum class Deliver { kFilled, kBecameReady, kDuplicate, kUnknown };
  Deliver deliver_remote(const ClosureId& target, std::uint16_t slot,
                         Value value);

  // ---- Migration & fault tolerance. ----

  /// Package every closure (ready and waiting) for migration to `successor`
  /// and clear this core.  The paper: when the owner reclaims a workstation,
  /// "the process's data migrates before termination to another process of
  /// the same parallel job."
  std::vector<Closure> drain_for_migration();

  /// Install a migrated closure (ready ones go to the ready list, waiting
  /// ones to the waiting table).
  void install_migrated(Closure closure);

  /// A participant died: re-enqueue snapshots of every task it stole from us
  /// (redo), and abort tasks we stole from it that are still queued (their
  /// results could never be claimed).  Returns number of tasks re-enqueued.
  std::size_t handle_participant_death(net::NodeId dead);

  /// Forget ledger entries whose redo window has passed (job completed).
  void clear_steal_ledger() { steal_ledger_.clear(); }

  /// Crash recovery, the crashed worker's side: a rejoining incarnation
  /// starts with no closures (survivors redo what it had stolen) and no
  /// ledgers, but keeps the id allocator running — reusing a previous life's
  /// ClosureIds would let late messages addressed to the old incarnation
  /// land in the new one's closures.  Stats also survive: they describe the
  /// participant, not the incarnation.
  void reset_for_rejoin() {
    (void)deque_.drain();
    waiting_.clear();
    steal_ledger_.clear();
    stolen_in_.clear();
    last_charge_ = 0;
  }

  /// Fresh core standing in for a later incarnation of a node id (the UDP
  /// runtime rebuilds the worker object on rejoin): start the id band at
  /// `base` so ids cannot collide with the previous incarnation's.
  void set_seq_base(std::uint64_t base) {
    if (base > next_seq_) next_seq_ = base;
  }

  // ---- Checkpointing (paper §6 future work). ----

  /// Serialize this worker's entire closure state (ready list + waiting
  /// table + id allocator).  Meaningful only at a quiescent instant (no
  /// messages in flight); the runtimes guarantee that.
  Bytes export_state() const;

  /// Restore a state exported by a core with the same node id.  The core
  /// must be fresh (no closures, no allocations).
  void import_state(const Bytes& state);

  // ---- Introspection. ----
  bool has_ready() const noexcept { return !deque_.empty(); }
  std::size_t ready_count() const noexcept { return deque_.size(); }
  std::size_t waiting_count() const noexcept { return waiting_.size(); }
  const WorkerStats& stats() const noexcept { return stats_; }
  WorkerStats& stats() noexcept { return stats_; }
  const ReadyDeque& ready_deque() const noexcept { return deque_; }

  /// Tests only: look up a waiting closure.
  const Closure* find_waiting(const ClosureId& id) const;

  /// Work units reported (via Context::charge) by the most recent execute().
  /// The simulated-distributed runtime converts these to simulated time; the
  /// real-time runtimes ignore them.
  std::uint64_t last_charge() const noexcept { return last_charge_; }

  /// Route application output through Hooks::emit_io (stdout by default).
  void emit_io(const std::string& text);

  // ---- Observability. ----

  /// Attach a trace sink and clock.  Pass nulls to detach.  When
  /// `emit_execute_spans` is false the core skips kExecute records (the
  /// simulated runtime emits its own spans in virtual time, where task cost
  /// is known only after execution).
  void set_trace(obs::TraceShard* shard, const obs::Clock* clock,
                 bool emit_execute_spans = true) {
    trace_ = (shard != nullptr && clock != nullptr) ? shard : nullptr;
    trace_clock_ = clock;
    trace_execute_spans_ = emit_execute_spans;
  }
  obs::TraceShard* trace_shard() const noexcept { return trace_; }
  const obs::Clock* trace_clock() const noexcept { return trace_clock_; }

  /// Record an instant event on this worker's shard (no-op when detached).
  void trace_instant(obs::EventType type, const ClosureId& id,
                     std::uint64_t arg);

 private:
  friend class Context;

  ClosureId next_id() { return ClosureId{me_, next_seq_++}; }

  bool tracing() const noexcept {
    return PHISH_OBS_TRACING && trace_ != nullptr && trace_->enabled();
  }
  std::uint64_t trace_now() const { return trace_clock_->now_ns(); }

  net::NodeId me_;
  const TaskRegistry& registry_;
  Hooks hooks_;
  std::uint64_t last_charge_ = 0;
  ReadyDeque deque_;
  std::unordered_map<ClosureId, Closure> waiting_;
  std::uint64_t next_seq_ = 1;
  WorkerStats stats_;
  obs::TraceShard* trace_ = nullptr;
  const obs::Clock* trace_clock_ = nullptr;
  bool trace_execute_spans_ = true;

  struct LedgerEntry {
    Closure snapshot;     // full copy: enough to redo the task
    net::NodeId thief;
  };
  // Keyed by the stolen closure's id.
  std::unordered_map<ClosureId, LedgerEntry> steal_ledger_;
  // Tasks I stole, by origin ledger: thief-side record for aborting orphans.
  std::unordered_map<ClosureId, net::NodeId> stolen_in_;
};

/// Context: the API surface a running task sees.  Mirrors the calls the Phish
/// preprocessor emitted into application code: spawning children, creating
/// join (waiting) closures, and sending arguments to continuations.
class Context {
 public:
  Context(WorkerCore& core, const Closure& current)
      : core_(core), current_(current) {}

  /// Spawn a ready child task; its result goes to `cont`.
  void spawn(TaskId task, std::vector<Value> args, const ContRef& cont) {
    core_.spawn(task, std::move(args), cont, current_.depth + 1);
  }
  void spawn(const std::string& task, std::vector<Value> args,
             const ContRef& cont) {
    spawn(core_.registry().id_of(task), std::move(args), cont);
  }

  /// Create a waiting closure (a join point) with `nslots` slots; when all
  /// are filled it runs `task` and sends the result to `cont`.
  ClosureId make_join(TaskId task, std::uint16_t nslots, const ContRef& cont) {
    return core_.create_waiting(task, nslots, cont, current_.depth + 1);
  }
  ClosureId make_join(const std::string& task, std::uint16_t nslots,
                      const ContRef& cont) {
    return make_join(core_.registry().id_of(task), nslots, cont);
  }

  /// Continuation pointing at slot `slot` of a join created here.
  ContRef slot(const ClosureId& join, std::uint16_t s) const {
    return core_.slot_ref(join, s);
  }

  /// Send a value to a continuation (the task's way of "returning").
  void send(const ContRef& cont, Value value) {
    core_.send_argument(cont, std::move(value));
  }

  /// Identity of the executing participant.
  net::NodeId worker() const { return core_.id(); }

  /// Registry lookup for spawning by name once and caching the id.
  TaskId task_id(const std::string& name) const {
    return core_.registry().id_of(name);
  }

  /// Report `units` of application work done by this task.  The simulated
  /// runtime turns the total into simulated compute time; real runtimes
  /// ignore it.  Call once or many times; amounts accumulate.
  void charge(std::uint64_t units) { core_.last_charge_ += units; }

  /// Emit a line of application output through the runtime's I/O channel
  /// (buffered to the Clearinghouse in the distributed runtimes).
  void print(const std::string& text) { core_.emit_io(text); }

 private:
  WorkerCore& core_;
  const Closure& current_;
};

}  // namespace phish
