// WorkerCore: the micro-level scheduler's per-participant state machine.
//
// One WorkerCore is the paper's "participating process" seen from the inside:
// the ready-task list (LIFO execution / FIFO steals), the table of waiting
// closures (tasks whose synchronization requirements are not yet met), the
// steal ledger used for fault-tolerant redo, and the Table-2 statistics.
//
// WorkerCore is deliberately runtime-agnostic: it never blocks, never sleeps,
// and touches the outside world only through Hooks.  The threads runtime
// drives many WorkerCores from std::threads (remote sends become direct
// deliveries into the target core), the simulated-distributed runtime drives
// them from simulator events with messages on the SimNetwork, and the UDP
// runtime drives them from real sockets.  External synchronization is the
// runtime's job; WorkerCore itself is not thread-safe.
//
// Hot-path design (see DESIGN.md §"The task hot path"):
//   * closures live in a per-core ClosurePool and move by pointer; the
//     spawn/execute/complete cycle allocates nothing in steady state;
//   * a locally spawned closure is *lazy*: it carries no ClosureId until a
//     thief, a migration, a redo snapshot, or a checkpoint needs a globally
//     valid name, at which point it is materialized (assigned an id);
//   * thieves can take a batch (steal-half) in one request.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/chase_lev.hpp"
#include "core/closure_pool.hpp"
#include "core/protocol.hpp"
#include "core/ready_deque.hpp"
#include "core/task_registry.hpp"
#include "core/waiting_table.hpp"
#include "core/worker_stats.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish {

class Context;
class WorkerCore;

/// Scheduling and hot-path policy knobs for one WorkerCore.
struct CoreOptions {
  ExecOrder exec_order = ExecOrder::kLifo;
  StealOrder steal_order = StealOrder::kFifo;
  /// Defer ClosureId assignment for locally spawned ready closures until a
  /// thief/migration/snapshot needs one (Cilk-THE spirit).  When tracing is
  /// attached ids are assigned eagerly anyway so trace events stay named.
  bool lazy_spawn = true;
  /// Pool closures (freelist reuse) instead of new/delete per closure.  The
  /// differential tests run both settings through identical scheduler code.
  bool pooled_alloc = true;
  /// Fuse spawn+execute for the LIFO child (Cilk-style): the most recently
  /// spawned ready closure sits in a one-slot register — the top of the
  /// conceptual ready stack — and the owner runs it without a deque push/pop
  /// pair.  Only a steal, migration, or snapshot demotes it to the real
  /// deque.  Effective only under kLifo execution order (the register IS the
  /// LIFO top; under kFifo it would reorder), where scheduling order is
  /// provably identical to the unfused deque.
  bool fused_spawn = true;
  /// Back the ready list with the lock-free Chase–Lev deque instead of the
  /// guarded ring, enabling the threads runtime's no-victim-lock steal path
  /// (steal_concurrent).  Requires the paper's standard orders (kLifo exec /
  /// kFifo steal); with ablation orders the guarded ring is used regardless.
  bool lockfree_deque = false;
};

/// Move-only handle to a closure popped for execution.  Dereference to
/// execute it; destruction returns the closure to the core's pool, so the
/// usual `while (auto c = core.pop_for_execution()) core.execute(*c);` loop
/// recycles closures with no further ceremony.
class PoppedTask {
 public:
  PoppedTask() noexcept = default;
  PoppedTask(Closure* closure, WorkerCore* core) noexcept
      : closure_(closure), core_(core) {}
  PoppedTask(const PoppedTask&) = delete;
  PoppedTask& operator=(const PoppedTask&) = delete;
  PoppedTask(PoppedTask&& other) noexcept
      : closure_(other.closure_), core_(other.core_) {
    other.closure_ = nullptr;
  }
  inline PoppedTask& operator=(PoppedTask&& other) noexcept;
  inline ~PoppedTask();

  explicit operator bool() const noexcept { return closure_ != nullptr; }
  bool has_value() const noexcept { return closure_ != nullptr; }
  Closure& operator*() const noexcept { return *closure_; }
  Closure* operator->() const noexcept { return closure_; }
  Closure* get() const noexcept { return closure_; }

 private:
  inline void release_() noexcept;

  Closure* closure_ = nullptr;
  WorkerCore* core_ = nullptr;
};

class WorkerCore {
 public:
  struct Hooks {
    /// Deliver an argument whose target closure lives on another worker.
    /// Required.
    std::function<void(const ContRef&, Value)> send_remote;
    /// Application output (Context::print).  The distributed runtimes route
    /// it to the Clearinghouse ("workers can perform I/O through the
    /// Clearinghouse, so a user need only watch the Clearinghouse to see job
    /// output").  Optional; defaults to stdout.
    std::function<void(const std::string&)> emit_io;
    /// A LOCAL send missed: cont.home names this worker but the target
    /// closure is not here.  On a worker whose previous incarnation migrated
    /// its closures away (owner reclaim, then restart), the target lives at
    /// the migration successor and the fill must follow the same forwarding
    /// stub remote arrivals use — without this hook it would be silently
    /// dead-lettered and the consumer would wait forever.  Return true to
    /// take ownership of the value (forwarded); false to fall through to
    /// normal dead-letter accounting.  Optional.
    std::function<bool(const ContRef&, Value&&)> forward_local_miss;
  };

  /// Most callers: default hot path (pooled + lazy) with the paper's
  /// scheduling orders, or the ablation orders.
  WorkerCore(net::NodeId me, const TaskRegistry& registry, Hooks hooks,
             ExecOrder exec_order = ExecOrder::kLifo,
             StealOrder steal_order = StealOrder::kFifo)
      : WorkerCore(me, registry, std::move(hooks),
                   CoreOptions{exec_order, steal_order, true, true}) {}

  /// Full control (differential tests run the seed allocation behavior with
  /// pooled_alloc/lazy_spawn off).
  WorkerCore(net::NodeId me, const TaskRegistry& registry, Hooks hooks,
             const CoreOptions& options);

  net::NodeId id() const noexcept { return me_; }
  const TaskRegistry& registry() const noexcept { return registry_; }
  const CoreOptions& options() const noexcept { return options_; }

  // ---- Task-facing operations (called by tasks through Context). ----

  /// Create a ready closure and push it at the head of the ready list.
  /// Accepts an ArgSlots (or anything convertible: an initializer list of
  /// Values, a std::vector<Value>).
  void spawn(TaskId task, ArgSlots args, ContRef cont, std::uint32_t depth);

  /// Hot-path overload for brace-literal arguments: fills the pooled
  /// closure's slots in place, with no ArgSlots temporary.
  void spawn(TaskId task, std::initializer_list<Value> args, ContRef cont,
             std::uint32_t depth);

  /// Hottest-path overload: one argument, moved straight into slot 0 (no
  /// initializer-list array on the stack, no per-element copy loop).  The
  /// value rides an rvalue reference and the cont a const reference so the
  /// three-deep call chain does zero intermediate Value moves and one
  /// ContRef copy (into the closure) instead of three of each.
  void spawn(TaskId task, Value&& arg, const ContRef& cont,
             std::uint32_t depth);

  /// Create a waiting closure with `nslots` empty argument slots.  It becomes
  /// ready when all slots are filled.
  ClosureId create_waiting(TaskId task, std::uint16_t nslots, ContRef cont,
                           std::uint32_t depth);

  /// Continuation reference to slot `slot` of a closure created here.  When
  /// `id` names the most recently created waiting closure (the make-join-
  /// then-wire-slots idiom), the ref carries a pool pointer so local sends
  /// skip the waiting-table lookup; the hint never leaves this node (wire
  /// encoding drops it) and is id-revalidated before every use.
  ContRef slot_ref(const ClosureId& id, std::uint16_t slot) const {
    ContRef c{id, slot, me_};
    if (last_waiting_ != nullptr && last_waiting_->id == id) {
      c.local_hint = last_waiting_;
    }
    return c;
  }

  /// Send an argument to a continuation.  Local targets are filled in place
  /// (a *local* synchronization); remote targets go through
  /// Hooks::send_remote (a *non-local* synchronization).
  void send_argument(const ContRef& cont, Value&& value);

  // ---- Scheduler-facing operations (called by the runtime). ----

  /// Pop the next task for local execution (the fused register when
  /// occupied, else the head of the list under LIFO).  The returned handle
  /// owns the closure; destroying it recycles the closure, so execute()
  /// before letting it go out of scope.
  PoppedTask pop_for_execution() {
    return PoppedTask(pop_ready_(), this);
  }

  /// Execute a popped closure: runs the task function with a Context bound
  /// to this core.  The closure's storage is reclaimed by the PoppedTask
  /// handle it came from.  Defined inline below (hot path).
  void execute(Closure& closure);

  /// Victim side of a steal: surrender the tail task, recording it in the
  /// steal ledger for possible redo if the thief later crashes.
  /// `thief` identifies who is taking it.
  std::optional<Closure> try_steal(net::NodeId thief);

  /// Victim side of a batched steal: up to `max_tasks` tasks (capped at
  /// half the ready list — steal-half — and at kMaxStealBatch), each
  /// ledgered individually.  max_tasks == 1 reproduces try_steal exactly.
  std::vector<Closure> try_steal_batch(net::NodeId thief,
                                       std::uint32_t max_tasks);

  /// Thief side of a steal: install a stolen closure for execution.
  void install_stolen(Closure closure);

  // ---- Lock-free concurrent steal protocol (lockfree_deque mode). ----
  //
  // The threads runtime's no-victim-lock path: the thief CAS-steals pooled
  // Closure* directly from this core's Chase–Lev deque, from any thread,
  // while the owner keeps running.  Safety: a queued closure is immutable
  // (the owner never touches it again until it is popped, and the CAS grants
  // the thief exclusive logical ownership; the push-side release fence
  // paired with the steal-side acquire publishes its contents), so the thief
  // copies the closure by value.  The pool slot still belongs to the
  // victim's pool, so it parks in a return stash until the owner reclaims
  // it; victim-side accounting goes to atomics the owner folds in.  The
  // victim-side kStealServed trace event is skipped in this mode (trace
  // shards are SPSC; the thief must not write the victim's shard).

  /// Thief side, called WITHOUT the victim's lock (any thread).  Steals up
  /// to max_tasks closures (steal-half, capped) by value into `out`;
  /// returns how many.  Stolen closures may be unnamed (lazily spawned):
  /// the thief's install_stolen mints ids from its own band.
  std::size_t steal_concurrent(std::vector<Closure>& out,
                               std::uint32_t max_tasks);

  /// Owner side, under the runtime's core lock: fold the atomic victim-side
  /// steal accounting into stats() and release parked pool slots.
  void reclaim_stolen_slots();

  /// Cheap owner-side check whether reclaim_stolen_slots() has slots to
  /// return (folding of bare request counts can wait for stat collection).
  bool has_parked_slots() const noexcept {
    return stash_count_.load(std::memory_order_acquire) != 0;
  }

  /// Thief-side bookkeeping shared by all runtimes: a steal request left
  /// this worker / a request came back empty.  Counts the stat and traces
  /// the event, so runtimes don't hand-roll either.
  void note_steal_request_sent();
  void note_steal_failed();

  /// Deliver an argument that arrived from the network for a closure hosted
  /// here.
  enum class Deliver { kFilled, kBecameReady, kDuplicate, kUnknown };
  Deliver deliver_remote(const ClosureId& target, std::uint16_t slot,
                         Value value);

  // ---- Migration & fault tolerance. ----

  /// Package every closure (ready and waiting) for migration to `successor`
  /// and clear this core.  The paper: when the owner reclaims a workstation,
  /// "the process's data migrates before termination to another process of
  /// the same parallel job."
  std::vector<Closure> drain_for_migration();

  /// Install a migrated closure (ready ones go to the ready list, waiting
  /// ones to the waiting table).
  void install_migrated(Closure closure);

  /// Install a closure redelivered from the Clearinghouse migration ledger
  /// after its previous holder died: same placement as install_migrated but
  /// counted and traced as migration redo.
  void install_migration_redo(Closure closure);

  /// Export (and clear) every steal-ledger entry.  A departing worker hands
  /// these to its migration successor so a later death of a thief still
  /// triggers redo — without this, redo snapshots for tasks stolen from the
  /// departed worker would land in a stub that never executes anything
  /// (the crash-after-reclaim stranding in DESIGN.md's failure matrix).
  std::vector<proto::MigrantLedgerEntry> export_steal_ledger();

  /// Successor side: adopt one migrated steal-ledger entry.  When the
  /// runtime already saw a death notice for the thief (`thief_dead`), the
  /// snapshot is redone immediately instead of ledgered — the death notice
  /// that would have triggered redo has already come and gone.
  void adopt_migrant_ledger(net::NodeId thief, Closure snapshot,
                            bool thief_dead);

  /// Entries currently in the steal ledger (cheap; drives the departing
  /// worker's decision whether a migration round is needed at all).
  std::size_t steal_ledger_size() const noexcept {
    return steal_ledger_.size();
  }

  /// A participant died: re-enqueue snapshots of every task it stole from us
  /// (redo), and abort tasks we stole from it that are still queued (their
  /// results could never be claimed).  Returns number of tasks re-enqueued.
  std::size_t handle_participant_death(net::NodeId dead);

  /// Forget ledger entries whose redo window has passed (job completed).
  void clear_steal_ledger() { steal_ledger_.clear(); }

  /// Crash recovery, the crashed worker's side: a rejoining incarnation
  /// starts with no closures (survivors redo what it had stolen) and no
  /// ledgers, but keeps the id allocator running — reusing a previous life's
  /// ClosureIds would let late messages addressed to the old incarnation
  /// land in the new one's closures.  Stats also survive: they describe the
  /// participant, not the incarnation.
  void reset_for_rejoin() {
    demote_next_();
    register_pending_joins_();
    for (Closure* c : drain_ready_()) pool_.release(c);
    waiting_.for_each([this](Closure* c) { pool_.release(c); });
    waiting_.clear();
    steal_ledger_.clear();
    stolen_in_.clear();
    refresh_exec_slow_path_();
    last_charge_ = 0;
  }

  /// Fresh core standing in for a later incarnation of a node id (the UDP
  /// runtime rebuilds the worker object on rejoin): start the id band at
  /// `base` so ids cannot collide with the previous incarnation's.
  void set_seq_base(std::uint64_t base) {
    if (base > next_seq_) next_seq_ = base;
  }

  // ---- Checkpointing (paper §6 future work). ----

  /// Serialize this worker's entire closure state (ready list + waiting
  /// table + id allocator).  Meaningful only at a quiescent instant (no
  /// messages in flight); the runtimes guarantee that.  Not const: lazily
  /// spawned ready closures are materialized (named) so the snapshot is
  /// globally addressable.
  Bytes export_state();

  /// Restore a state exported by a core with the same node id.  The core
  /// must be fresh (no closures, no allocations).
  void import_state(const Bytes& state);

  // ---- Introspection. ----
  // Counts include the fused register.  In lockfree mode the deque size is
  // the Chase–Lev approximate size: exact whenever the caller is externally
  // synchronized with thieves (single-threaded runs, quiescence checks under
  // all core locks), racy-but-harmless otherwise.
  bool has_ready() const noexcept {
    return next_task_ != nullptr ||
           (lockfree_ ? !lockfree_->empty_approx() : !deque_.empty());
  }
  std::size_t ready_count() const noexcept {
    return (next_task_ != nullptr ? 1 : 0) +
           (lockfree_ ? lockfree_->size_approx() : deque_.size());
  }
  /// Registered waiting closures.  In pooled (lazy-registration) mode this
  /// can undercount until register_pending_joins_ runs; every externally
  /// observable path (export, migration, checkpoints) registers first.
  std::size_t waiting_count() const noexcept { return waiting_.size(); }
  const WorkerStats& stats() const noexcept { return stats_; }
  WorkerStats& stats() noexcept { return stats_; }
  const ClosurePool& pool() const noexcept { return pool_; }

  /// Tests only: look up a waiting closure.
  const Closure* find_waiting(const ClosureId& id) const {
    return waiting_.find(id);
  }

  /// Work units reported (via Context::charge) by the most recent execute().
  /// The simulated-distributed runtime converts these to simulated time; the
  /// real-time runtimes ignore them.
  std::uint64_t last_charge() const noexcept { return last_charge_; }

  /// Route application output through Hooks::emit_io (stdout by default).
  void emit_io(const std::string& text);

  // ---- Observability. ----

  /// Attach a trace sink and clock.  Pass nulls to detach.  When
  /// `emit_execute_spans` is false the core skips kExecute records (the
  /// simulated runtime emits its own spans in virtual time, where task cost
  /// is known only after execution).
  void set_trace(obs::TraceShard* shard, const obs::Clock* clock,
                 bool emit_execute_spans = true) {
    trace_ = (shard != nullptr && clock != nullptr) ? shard : nullptr;
    trace_clock_ = clock;
    trace_execute_spans_ = emit_execute_spans;
    refresh_exec_slow_path_();
  }
  obs::TraceShard* trace_shard() const noexcept { return trace_; }
  const obs::Clock* trace_clock() const noexcept { return trace_clock_; }

  /// Record an instant event on this worker's shard (no-op when detached).
  void trace_instant(obs::EventType type, const ClosureId& id,
                     std::uint64_t arg);

  /// Largest batch a single steal request can carry.
  static constexpr std::uint32_t kMaxStealBatch = 64;

 private:
  friend class Context;
  friend class PoppedTask;

  ClosureId next_id() { return ClosureId{me_, next_seq_++}; }

  /// Shared tail of the spawn overloads: id policy, stats, ready push.
  void finish_spawn_(Closure* c);

  /// Out-of-line cold half of send_argument: count and log a local send
  /// whose target closure does not exist on this worker.
  void local_send_unknown_(const ClosureId& target);

  /// Out-of-line slow variant of execute(): identical semantics plus the
  /// stolen-task abort bookkeeping and the kExecute span, kept out of the
  /// inlined hot body.
  void execute_slow_(Closure& closure, const TaskEntry& entry);

  /// execute() tests one cached byte instead of the tracer fields and the
  /// stolen_in_ map; every mutation of either re-derives it (all cold).
  void refresh_exec_slow_path_() {
    exec_slow_path_ =
        !stolen_in_.empty() || (tracing() && trace_execute_spans_);
  }

  /// Shared tail of local/remote argument delivery: idempotent fill, trace,
  /// and promotion to the ready list when the last argument arrives.
  Deliver fill_waiting_(Closure* c, const ClosureId& target,
                        std::uint16_t slot, Value&& value);

  /// Give a lazily spawned closure its globally valid name.
  void materialize(Closure* c) {
    if (!c->id.valid()) c->id = next_id();
  }

  /// Insert every lazily created (still unregistered) waiting closure into
  /// the waiting table, making it addressable by id.  Cold: called before
  /// migration/export/rejoin and as a one-shot fallback when a hint-less
  /// local send misses the table.  The pool sweep is safe because a live
  /// unregistered join is exactly a slot with a valid id, missing > 0 and
  /// the kNoWaitSlot sentinel: recycled slots have invalid ids, ready and
  /// executing closures have missing == 0, and the sweep never runs
  /// concurrently with spawn/steal mutation (owner thread, cold moments).
  void register_pending_joins_() {
    if (!pending_waiting_) return;
    pool_.for_each_slot([this](Closure* c) {
      if (c->wait_slot == Closure::kNoWaitSlot && c->missing != 0 &&
          c->id.valid()) {
        waiting_.insert(c);  // overwrites the sentinel with the bucket index
      }
    });
    pending_waiting_ = false;
  }

  // ---- Ready-list plumbing: fused register over either deque backend. ----
  // Invariant: the conceptual ready stack is [next_task_?] + deque, and
  // every mutation preserves exactly the order the unfused guarded deque
  // would hold, so all modes schedule identically.

  /// Push a newly ready closure at the conceptual stack top.
  void push_ready_(Closure* c) {
    if (fused_) {
      Closure* prev = next_task_;
      next_task_ = c;
      if (prev == nullptr) return;
      c = prev;  // old register occupant sits just below the new top
    }
    deque_push_(c);
  }

  void deque_push_(Closure* c) {
    if (lockfree_) {
      lockfree_->push(c);
      ++owner_size_;
    } else {
      deque_.push(c);
    }
  }

  /// Owner pop from the conceptual stack top (register first).
  Closure* pop_ready_() {
    if (Closure* c = next_task_) {
      next_task_ = nullptr;
      return c;
    }
    return deque_pop_();
  }

  Closure* deque_pop_() {
    if (lockfree_) {
      // owner_size_ is the owner's overestimate of the deque size (pushes
      // minus owner pops; steals only shrink the real size further), so 0
      // means certainly empty — skip Chase–Lev pop's seq_cst fence.
      if (owner_size_ == 0) return nullptr;
      if (auto c = lockfree_->pop()) {
        --owner_size_;
        return *c;
      }
      owner_size_ = 0;  // thieves emptied it; resync the overestimate
      return nullptr;
    }
    return deque_.pop_for_execution();
  }

  /// Move the fused register occupant to the real deque head.  Called
  /// before any operation that must see the full ready list (synchronized
  /// steals, migration, snapshots, orphan removal).
  void demote_next_() {
    if (next_task_ != nullptr) {
      deque_push_(next_task_);
      next_task_ = nullptr;
    }
  }

  /// Drain the deque head-first (register must already be demoted).
  /// Lockfree callers are externally synchronized with thieves.
  std::vector<Closure*> drain_ready_();

  /// Remove a queued closure by id (register must already be demoted).
  Closure* remove_ready_(const ClosureId& id);

  /// Non-destructive head-first snapshot (register must already be
  /// demoted; lockfree callers externally synchronized).
  Closure* ready_at_(std::size_t i) {
    return lockfree_ ? lockfree_->peek_from_bottom(i) : deque_.at(i);
  }

  /// Take ownership of a wire closure into the pool.
  Closure* adopt(Closure&& value) {
    Closure* c = pool_.acquire();
    *c = std::move(value);
    return c;
  }

  void release_closure(Closure* c) { pool_.release(c); }

  bool tracing() const noexcept {
    return PHISH_OBS_TRACING && trace_ != nullptr && trace_->enabled();
  }
  std::uint64_t trace_now() const { return trace_clock_->now_ns(); }

  net::NodeId me_;
  const TaskRegistry& registry_;
  // Cached copy of the registry's flat dispatch array (base + bound), so
  // execute() costs one indexed load instead of re-deriving both from the
  // vector each task.  Safe because registration completes before any core
  // is constructed (apps register in register_*(), runtimes build cores per
  // job afterwards); a registry that grew mid-job would invalidate this.
  const TaskEntry* task_entries_;
  std::uint32_t task_limit_;
  Hooks hooks_;
  CoreOptions options_;
  std::uint64_t last_charge_ = 0;
  ClosurePool pool_;
  ReadyDeque deque_;  // guarded ring backend (default)
  std::unique_ptr<ChaseLevDeque<Closure*>> lockfree_;  // lockfree backend
  /// Fused spawn register: the top of the conceptual ready stack.
  Closure* next_task_ = nullptr;
  bool fused_ = false;
  std::size_t owner_size_ = 0;  // lockfree: owner-side size overestimate
  WaitingTable waiting_;
  // Dirty flag: some waiting closures may have been created lazily (pooled
  // mode) and not yet inserted into waiting_; see create_waiting /
  // register_pending_joins_.  A flag rather than a count keeps the join
  // promote path free of balance bookkeeping.
  bool pending_waiting_ = false;

  // Most recently created waiting closure; feeds slot_ref's local_hint.
  // Only set in pooled mode (pool storage is never freed, so a stale value
  // is safe to id-check; a heap-mode pointer would dangle).
  Closure* last_waiting_ = nullptr;
  std::uint64_t next_seq_ = 1;
  WorkerStats stats_;
  obs::TraceShard* trace_ = nullptr;
  const obs::Clock* trace_clock_ = nullptr;
  bool trace_execute_spans_ = true;
  // Cached `!stolen_in_.empty() || execute-span tracing` so the execute()
  // hot body tests one byte; see refresh_exec_slow_path_().
  bool exec_slow_path_ = false;

  struct LedgerEntry {
    Closure snapshot;     // full copy: enough to redo the task
    net::NodeId thief;
  };
  // Keyed by the stolen closure's id.
  std::unordered_map<ClosureId, LedgerEntry> steal_ledger_;
  // Tasks I stole, by origin ledger: thief-side record for aborting orphans.
  std::unordered_map<ClosureId, net::NodeId> stolen_in_;

  // ---- Concurrent-steal victim-side state (lockfree mode only). ----
  // Thieves write these from their own threads; the owner folds/reclaims
  // under the runtime's core lock.
  std::mutex stash_mutex_;
  std::vector<Closure*> stash_;  // stolen pool slots awaiting owner reclaim
  std::atomic<std::size_t> stash_count_{0};
  std::atomic<std::uint64_t> steal_reqs_atomic_{0};
  std::atomic<std::uint64_t> stolen_count_atomic_{0};
  std::atomic<std::uint64_t> stolen_depth_atomic_{0};
};

inline PoppedTask& PoppedTask::operator=(PoppedTask&& other) noexcept {
  if (this != &other) {
    release_();
    closure_ = other.closure_;
    core_ = other.core_;
    other.closure_ = nullptr;
  }
  return *this;
}

inline PoppedTask::~PoppedTask() { release_(); }

inline void PoppedTask::release_() noexcept {
  if (closure_ != nullptr) {
    core_->release_closure(closure_);
    closure_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Hot-path members are defined inline (in the header) so application
// translation units can fold the whole spawn / make-join / send-argument
// cycle into the task functions themselves.  The fine-grain Table 1 column
// is dominated by these few dozen instructions; keeping them out-of-line
// costs a cross-TU call per operation, several per task.  Cold halves
// (tracing, the unknown-closure log) stay in worker_core.cpp.
// ---------------------------------------------------------------------------

inline void WorkerCore::finish_spawn_(Closure* c) {
  // Lazy spawn: no id until a thief / migration / snapshot needs a global
  // name.  Tracing wants named events, so ids are eager under a tracer.
  if (!options_.lazy_spawn || tracing()) c->id = next_id();
  stats_.note_alloc();
  ++stats_.tasks_spawned;
  push_ready_(c);
  if (tracing()) {
    // ready_count() (deque + fused register) keeps the trace byte-identical
    // across fused and unfused modes.
    trace_instant(obs::EventType::kSpawn, c->id, ready_count());
  }
}

inline void WorkerCore::spawn(TaskId task, ArgSlots args, ContRef cont,
                              std::uint32_t depth) {
  Closure* c = pool_.acquire();
  c->task = task;
  c->cont = cont;
  c->args = std::move(args);
  c->missing = 0;
  c->depth = depth;
  finish_spawn_(c);
}

inline void WorkerCore::spawn(TaskId task, std::initializer_list<Value> args,
                              ContRef cont, std::uint32_t depth) {
  Closure* c = pool_.acquire();
  c->task = task;
  c->cont = cont;
  c->args.assign_filled(args);
  c->missing = 0;
  c->depth = depth;
  finish_spawn_(c);
}

inline void WorkerCore::spawn(TaskId task, Value&& arg, const ContRef& cont,
                              std::uint32_t depth) {
  Closure* c = pool_.acquire();
  c->task = task;
  c->cont = cont;
  c->args.assign_filled(std::move(arg));
  c->missing = 0;
  c->depth = depth;
  finish_spawn_(c);
}

inline ClosureId WorkerCore::create_waiting(TaskId task, std::uint16_t nslots,
                                            ContRef cont,
                                            std::uint32_t depth) {
  Closure* c = pool_.acquire();
  // Joins always get an id up front: continuations name them by id.
  c->id = next_id();
  c->task = task;
  c->cont = cont;
  c->args.reset(nslots);
  c->missing = nslots;
  c->depth = depth;
  stats_.note_alloc();
  const ClosureId id = c->id;
  if (nslots == 0) {
    // Degenerate join: ready immediately.
    push_ready_(c);
  } else if (pool_.pooled()) {
    // Lazy registration: local sends reach the join through the ContRef
    // pool-pointer hint (slot_ref), so the table insert — the single most
    // expensive step of the join cycle — is deferred until something
    // actually needs id-addressability (a hint-less send, migration,
    // export).  register_pending_joins_() sweeps the pool at those points.
    c->wait_slot = Closure::kNoWaitSlot;
    pending_waiting_ = true;
    last_waiting_ = c;
  } else {
    // Heap mode frees closures on release, so pool pointers can dangle and
    // hints are never handed out (see slot_ref): every join must be
    // reachable by id from birth.
    waiting_.insert(c);
  }
  return id;
}

inline WorkerCore::Deliver WorkerCore::fill_waiting_(Closure* c,
                                                     const ClosureId& target,
                                                     std::uint16_t slot,
                                                     Value&& value) {
  if (!c->fill(slot, std::move(value))) {
    ++stats_.args_duplicate;
    return Deliver::kDuplicate;
  }
  if (tracing()) {
    trace_instant(obs::EventType::kArgRecv, target, slot);
  }
  if (c->ready()) {
    waiting_.erase_entry(c);  // safe no-op for a never-registered join
    push_ready_(c);
    return Deliver::kBecameReady;
  }
  return Deliver::kFilled;
}

inline void WorkerCore::send_argument(const ContRef& cont, Value&& value) {
  ++stats_.synchronizations;
  if (__builtin_expect(tracing(), 0)) {
    trace_instant(obs::EventType::kArgSend, cont.target,
                  cont.home == me_ ? 0 : 1);
  }
  if (cont.home == me_) {
    // Fast path: the ref carries a pool pointer to its target.  Pool
    // storage is never freed while the core lives, so the deref is safe;
    // the id check rejects a recycled (hence renamed) closure.  Heap mode
    // never sets hints (see slot_ref), so no guard is needed here.
    Closure* target = cont.local_hint;
    if (__builtin_expect(target != nullptr && target->id == cont.target, 1)) {
      // Hint hit: the fused fill — semantically identical to fill_waiting_
      // (idempotent fill, trace, promote) with the rare outcomes hinted
      // cold, and no Deliver plumbing.
      if (__builtin_expect(!target->fill(cont.slot, std::move(value)), 0)) {
        ++stats_.args_duplicate;
        return;
      }
      if (__builtin_expect(tracing(), 0)) {
        trace_instant(obs::EventType::kArgRecv, cont.target, cont.slot);
      }
      if (target->missing == 0) {
        // erase_entry is a safe no-op for a never-registered join (the
        // kNoWaitSlot sentinel fails its bucket bounds check).
        waiting_.erase_entry(target);
        push_ready_(target);
      }
      return;
    }
    {
      target = waiting_.find(cont.target);
      if (target == nullptr && pending_waiting_) {
        // The target may be a lazily created join whose hint was dropped
        // (e.g. the ContRef crossed a wire encode/decode and came home, or
        // the app stashed a ref made before another join superseded the
        // hint).  Register stragglers and retry once.
        register_pending_joins_();
        target = waiting_.find(cont.target);
      }
    }
    if (__builtin_expect(target != nullptr, 1)) {
      fill_waiting_(target, cont.target, cont.slot, std::move(value));
      return;
    }
    if (hooks_.forward_local_miss &&
        hooks_.forward_local_miss(cont, std::move(value))) {
      ++stats_.args_forwarded;
      return;
    }
    local_send_unknown_(cont.target);
    return;
  }
  ++stats_.non_local_synchs;
  hooks_.send_remote(cont, std::move(value));
}

/// Context: the API surface a running task sees.  Mirrors the calls the Phish
/// preprocessor emitted into application code: spawning children, creating
/// join (waiting) closures, and sending arguments to continuations.
class Context {
 public:
  Context(WorkerCore& core, const Closure& current)
      : core_(core), current_(current) {}

  /// Spawn a ready child task; its result goes to `cont`.  `args` accepts an
  /// initializer list of Values or a std::vector<Value> (both become
  /// ArgSlots, inline-stored up to ArgSlots::kInlineSlots values).
  void spawn(TaskId task, ArgSlots args, const ContRef& cont) {
    core_.spawn(task, std::move(args), cont, current_.depth + 1);
  }
  void spawn(TaskId task, std::initializer_list<Value> args,
             const ContRef& cont) {
    core_.spawn(task, args, cont, current_.depth + 1);
  }
  void spawn(TaskId task, Value arg, const ContRef& cont) {
    core_.spawn(task, std::move(arg), cont, current_.depth + 1);
  }
  void spawn(const std::string& task, ArgSlots args, const ContRef& cont) {
    spawn(core_.registry().id_of(task), std::move(args), cont);
  }

  /// Create a waiting closure (a join point) with `nslots` slots; when all
  /// are filled it runs `task` and sends the result to `cont`.
  ClosureId make_join(TaskId task, std::uint16_t nslots, const ContRef& cont) {
    return core_.create_waiting(task, nslots, cont, current_.depth + 1);
  }
  ClosureId make_join(const std::string& task, std::uint16_t nslots,
                      const ContRef& cont) {
    return make_join(core_.registry().id_of(task), nslots, cont);
  }

  /// Continuation pointing at slot `slot` of a join created here.
  ContRef slot(const ClosureId& join, std::uint16_t s) const {
    return core_.slot_ref(join, s);
  }

  /// Send a value to a continuation (the task's way of "returning").
  void send(const ContRef& cont, Value value) {
    core_.send_argument(cont, std::move(value));
  }

  /// Identity of the executing participant.
  net::NodeId worker() const { return core_.id(); }

  /// Registry lookup for spawning by name once and caching the id.
  TaskId task_id(const std::string& name) const {
    return core_.registry().id_of(name);
  }

  /// Report `units` of application work done by this task.  The simulated
  /// runtime turns the total into simulated compute time; real runtimes
  /// ignore it.  Call once or many times; amounts accumulate.
  void charge(std::uint64_t units) { core_.last_charge_ += units; }

  /// Emit a line of application output through the runtime's I/O channel
  /// (buffered to the Clearinghouse in the distributed runtimes).
  void print(const std::string& text) { core_.emit_io(text); }

 private:
  WorkerCore& core_;
  const Closure& current_;
};

inline void WorkerCore::execute(Closure& closure) {
  // Devirtualized dispatch: one indexed load from the registry's flat entry
  // array (bounds check doubles as wire validation) and one indirect call.
  // The rare companions — abort bookkeeping for stolen tasks and the traced
  // variant — are branch-hinted cold and (for tracing) outlined so the
  // inlined hot body stays a handful of instructions; the extra branches
  // were worth ~3 ns/closure on fine-grain fib.
  if (__builtin_expect(closure.task >= task_limit_, 0)) {
    (void)registry_.entry(closure.task);  // throws std::out_of_range
  }
  const TaskEntry& entry = task_entries_[closure.task];
  last_charge_ = 0;
  if (__builtin_expect(exec_slow_path_, 0)) {
    execute_slow_(closure, entry);
    return;
  }
  Context ctx(*this, closure);
  entry.fn(ctx, closure, entry.env);
  ++stats_.tasks_executed;
  stats_.executed_depth_total += closure.depth;
  stats_.note_free();
}

}  // namespace phish
