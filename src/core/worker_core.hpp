// WorkerCore: the micro-level scheduler's per-participant state machine.
//
// One WorkerCore is the paper's "participating process" seen from the inside:
// the ready-task list (LIFO execution / FIFO steals), the table of waiting
// closures (tasks whose synchronization requirements are not yet met), the
// steal ledger used for fault-tolerant redo, and the Table-2 statistics.
//
// WorkerCore is deliberately runtime-agnostic: it never blocks, never sleeps,
// and touches the outside world only through Hooks.  The threads runtime
// drives many WorkerCores from std::threads (remote sends become direct
// deliveries into the target core), the simulated-distributed runtime drives
// them from simulator events with messages on the SimNetwork, and the UDP
// runtime drives them from real sockets.  External synchronization is the
// runtime's job; WorkerCore itself is not thread-safe.
//
// Hot-path design (see DESIGN.md §"The task hot path"):
//   * closures live in a per-core ClosurePool and move by pointer; the
//     spawn/execute/complete cycle allocates nothing in steady state;
//   * a locally spawned closure is *lazy*: it carries no ClosureId until a
//     thief, a migration, a redo snapshot, or a checkpoint needs a globally
//     valid name, at which point it is materialized (assigned an id);
//   * thieves can take a batch (steal-half) in one request.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/closure_pool.hpp"
#include "core/ready_deque.hpp"
#include "core/task_registry.hpp"
#include "core/waiting_table.hpp"
#include "core/worker_stats.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish {

class Context;
class WorkerCore;

/// Scheduling and hot-path policy knobs for one WorkerCore.
struct CoreOptions {
  ExecOrder exec_order = ExecOrder::kLifo;
  StealOrder steal_order = StealOrder::kFifo;
  /// Defer ClosureId assignment for locally spawned ready closures until a
  /// thief/migration/snapshot needs one (Cilk-THE spirit).  When tracing is
  /// attached ids are assigned eagerly anyway so trace events stay named.
  bool lazy_spawn = true;
  /// Pool closures (freelist reuse) instead of new/delete per closure.  The
  /// differential tests run both settings through identical scheduler code.
  bool pooled_alloc = true;
};

/// Move-only handle to a closure popped for execution.  Dereference to
/// execute it; destruction returns the closure to the core's pool, so the
/// usual `while (auto c = core.pop_for_execution()) core.execute(*c);` loop
/// recycles closures with no further ceremony.
class PoppedTask {
 public:
  PoppedTask() noexcept = default;
  PoppedTask(Closure* closure, WorkerCore* core) noexcept
      : closure_(closure), core_(core) {}
  PoppedTask(const PoppedTask&) = delete;
  PoppedTask& operator=(const PoppedTask&) = delete;
  PoppedTask(PoppedTask&& other) noexcept
      : closure_(other.closure_), core_(other.core_) {
    other.closure_ = nullptr;
  }
  inline PoppedTask& operator=(PoppedTask&& other) noexcept;
  inline ~PoppedTask();

  explicit operator bool() const noexcept { return closure_ != nullptr; }
  bool has_value() const noexcept { return closure_ != nullptr; }
  Closure& operator*() const noexcept { return *closure_; }
  Closure* operator->() const noexcept { return closure_; }
  Closure* get() const noexcept { return closure_; }

 private:
  inline void release_() noexcept;

  Closure* closure_ = nullptr;
  WorkerCore* core_ = nullptr;
};

class WorkerCore {
 public:
  struct Hooks {
    /// Deliver an argument whose target closure lives on another worker.
    /// Required.
    std::function<void(const ContRef&, Value)> send_remote;
    /// Application output (Context::print).  The distributed runtimes route
    /// it to the Clearinghouse ("workers can perform I/O through the
    /// Clearinghouse, so a user need only watch the Clearinghouse to see job
    /// output").  Optional; defaults to stdout.
    std::function<void(const std::string&)> emit_io;
  };

  /// Most callers: default hot path (pooled + lazy) with the paper's
  /// scheduling orders, or the ablation orders.
  WorkerCore(net::NodeId me, const TaskRegistry& registry, Hooks hooks,
             ExecOrder exec_order = ExecOrder::kLifo,
             StealOrder steal_order = StealOrder::kFifo)
      : WorkerCore(me, registry, std::move(hooks),
                   CoreOptions{exec_order, steal_order, true, true}) {}

  /// Full control (differential tests run the seed allocation behavior with
  /// pooled_alloc/lazy_spawn off).
  WorkerCore(net::NodeId me, const TaskRegistry& registry, Hooks hooks,
             const CoreOptions& options);

  net::NodeId id() const noexcept { return me_; }
  const TaskRegistry& registry() const noexcept { return registry_; }
  const CoreOptions& options() const noexcept { return options_; }

  // ---- Task-facing operations (called by tasks through Context). ----

  /// Create a ready closure and push it at the head of the ready list.
  /// Accepts an ArgSlots (or anything convertible: an initializer list of
  /// Values, a std::vector<Value>).
  void spawn(TaskId task, ArgSlots args, ContRef cont, std::uint32_t depth);

  /// Hot-path overload for brace-literal arguments: fills the pooled
  /// closure's slots in place, with no ArgSlots temporary.
  void spawn(TaskId task, std::initializer_list<Value> args, ContRef cont,
             std::uint32_t depth);

  /// Create a waiting closure with `nslots` empty argument slots.  It becomes
  /// ready when all slots are filled.
  ClosureId create_waiting(TaskId task, std::uint16_t nslots, ContRef cont,
                           std::uint32_t depth);

  /// Continuation reference to slot `slot` of a closure created here.  When
  /// `id` names the most recently created waiting closure (the make-join-
  /// then-wire-slots idiom), the ref carries a pool pointer so local sends
  /// skip the waiting-table lookup; the hint never leaves this node (wire
  /// encoding drops it) and is id-revalidated before every use.
  ContRef slot_ref(const ClosureId& id, std::uint16_t slot) const {
    ContRef c{id, slot, me_};
    if (last_waiting_ != nullptr && last_waiting_->id == id) {
      c.local_hint = last_waiting_;
    }
    return c;
  }

  /// Send an argument to a continuation.  Local targets are filled in place
  /// (a *local* synchronization); remote targets go through
  /// Hooks::send_remote (a *non-local* synchronization).
  void send_argument(const ContRef& cont, Value value);

  // ---- Scheduler-facing operations (called by the runtime). ----

  /// Pop the next task for local execution (head of the list under LIFO).
  /// The returned handle owns the closure; destroying it recycles the
  /// closure, so execute() before letting it go out of scope.
  PoppedTask pop_for_execution() {
    return PoppedTask(deque_.pop_for_execution(), this);
  }

  /// Execute a popped closure: runs the task function with a Context bound
  /// to this core.  The closure's storage is reclaimed by the PoppedTask
  /// handle it came from.
  void execute(Closure& closure);

  /// Victim side of a steal: surrender the tail task, recording it in the
  /// steal ledger for possible redo if the thief later crashes.
  /// `thief` identifies who is taking it.
  std::optional<Closure> try_steal(net::NodeId thief);

  /// Victim side of a batched steal: up to `max_tasks` tasks (capped at
  /// half the ready list — steal-half — and at kMaxStealBatch), each
  /// ledgered individually.  max_tasks == 1 reproduces try_steal exactly.
  std::vector<Closure> try_steal_batch(net::NodeId thief,
                                       std::uint32_t max_tasks);

  /// Thief side of a steal: install a stolen closure for execution.
  void install_stolen(Closure closure);

  /// Thief-side bookkeeping shared by all runtimes: a steal request left
  /// this worker / a request came back empty.  Counts the stat and traces
  /// the event, so runtimes don't hand-roll either.
  void note_steal_request_sent();
  void note_steal_failed();

  /// Deliver an argument that arrived from the network for a closure hosted
  /// here.
  enum class Deliver { kFilled, kBecameReady, kDuplicate, kUnknown };
  Deliver deliver_remote(const ClosureId& target, std::uint16_t slot,
                         Value value);

  // ---- Migration & fault tolerance. ----

  /// Package every closure (ready and waiting) for migration to `successor`
  /// and clear this core.  The paper: when the owner reclaims a workstation,
  /// "the process's data migrates before termination to another process of
  /// the same parallel job."
  std::vector<Closure> drain_for_migration();

  /// Install a migrated closure (ready ones go to the ready list, waiting
  /// ones to the waiting table).
  void install_migrated(Closure closure);

  /// A participant died: re-enqueue snapshots of every task it stole from us
  /// (redo), and abort tasks we stole from it that are still queued (their
  /// results could never be claimed).  Returns number of tasks re-enqueued.
  std::size_t handle_participant_death(net::NodeId dead);

  /// Forget ledger entries whose redo window has passed (job completed).
  void clear_steal_ledger() { steal_ledger_.clear(); }

  /// Crash recovery, the crashed worker's side: a rejoining incarnation
  /// starts with no closures (survivors redo what it had stolen) and no
  /// ledgers, but keeps the id allocator running — reusing a previous life's
  /// ClosureIds would let late messages addressed to the old incarnation
  /// land in the new one's closures.  Stats also survive: they describe the
  /// participant, not the incarnation.
  void reset_for_rejoin() {
    for (Closure* c : deque_.drain()) pool_.release(c);
    waiting_.for_each([this](Closure* c) { pool_.release(c); });
    waiting_.clear();
    steal_ledger_.clear();
    stolen_in_.clear();
    last_charge_ = 0;
  }

  /// Fresh core standing in for a later incarnation of a node id (the UDP
  /// runtime rebuilds the worker object on rejoin): start the id band at
  /// `base` so ids cannot collide with the previous incarnation's.
  void set_seq_base(std::uint64_t base) {
    if (base > next_seq_) next_seq_ = base;
  }

  // ---- Checkpointing (paper §6 future work). ----

  /// Serialize this worker's entire closure state (ready list + waiting
  /// table + id allocator).  Meaningful only at a quiescent instant (no
  /// messages in flight); the runtimes guarantee that.  Not const: lazily
  /// spawned ready closures are materialized (named) so the snapshot is
  /// globally addressable.
  Bytes export_state();

  /// Restore a state exported by a core with the same node id.  The core
  /// must be fresh (no closures, no allocations).
  void import_state(const Bytes& state);

  // ---- Introspection. ----
  bool has_ready() const noexcept { return !deque_.empty(); }
  std::size_t ready_count() const noexcept { return deque_.size(); }
  std::size_t waiting_count() const noexcept { return waiting_.size(); }
  const WorkerStats& stats() const noexcept { return stats_; }
  WorkerStats& stats() noexcept { return stats_; }
  const ReadyDeque& ready_deque() const noexcept { return deque_; }
  const ClosurePool& pool() const noexcept { return pool_; }

  /// Tests only: look up a waiting closure.
  const Closure* find_waiting(const ClosureId& id) const {
    return waiting_.find(id);
  }

  /// Work units reported (via Context::charge) by the most recent execute().
  /// The simulated-distributed runtime converts these to simulated time; the
  /// real-time runtimes ignore them.
  std::uint64_t last_charge() const noexcept { return last_charge_; }

  /// Route application output through Hooks::emit_io (stdout by default).
  void emit_io(const std::string& text);

  // ---- Observability. ----

  /// Attach a trace sink and clock.  Pass nulls to detach.  When
  /// `emit_execute_spans` is false the core skips kExecute records (the
  /// simulated runtime emits its own spans in virtual time, where task cost
  /// is known only after execution).
  void set_trace(obs::TraceShard* shard, const obs::Clock* clock,
                 bool emit_execute_spans = true) {
    trace_ = (shard != nullptr && clock != nullptr) ? shard : nullptr;
    trace_clock_ = clock;
    trace_execute_spans_ = emit_execute_spans;
  }
  obs::TraceShard* trace_shard() const noexcept { return trace_; }
  const obs::Clock* trace_clock() const noexcept { return trace_clock_; }

  /// Record an instant event on this worker's shard (no-op when detached).
  void trace_instant(obs::EventType type, const ClosureId& id,
                     std::uint64_t arg);

  /// Largest batch a single steal request can carry.
  static constexpr std::uint32_t kMaxStealBatch = 64;

 private:
  friend class Context;
  friend class PoppedTask;

  ClosureId next_id() { return ClosureId{me_, next_seq_++}; }

  /// Shared tail of the spawn overloads: id policy, stats, ready push.
  void finish_spawn_(Closure* c);

  /// Out-of-line cold half of send_argument: count and log a local send
  /// whose target closure does not exist on this worker.
  void local_send_unknown_(const ClosureId& target);

  /// Shared tail of local/remote argument delivery: idempotent fill, trace,
  /// and promotion to the ready list when the last argument arrives.
  Deliver fill_waiting_(Closure* c, const ClosureId& target,
                        std::uint16_t slot, Value value);

  /// Give a lazily spawned closure its globally valid name.
  void materialize(Closure* c) {
    if (!c->id.valid()) c->id = next_id();
  }

  /// Take ownership of a wire closure into the pool.
  Closure* adopt(Closure&& value) {
    Closure* c = pool_.acquire();
    *c = std::move(value);
    return c;
  }

  void release_closure(Closure* c) { pool_.release(c); }

  bool tracing() const noexcept {
    return PHISH_OBS_TRACING && trace_ != nullptr && trace_->enabled();
  }
  std::uint64_t trace_now() const { return trace_clock_->now_ns(); }

  net::NodeId me_;
  const TaskRegistry& registry_;
  Hooks hooks_;
  CoreOptions options_;
  std::uint64_t last_charge_ = 0;
  ClosurePool pool_;
  ReadyDeque deque_;
  WaitingTable waiting_;
  // Most recently created waiting closure; feeds slot_ref's local_hint.
  // Only set in pooled mode (pool storage is never freed, so a stale value
  // is safe to id-check; a heap-mode pointer would dangle).
  Closure* last_waiting_ = nullptr;
  std::uint64_t next_seq_ = 1;
  WorkerStats stats_;
  obs::TraceShard* trace_ = nullptr;
  const obs::Clock* trace_clock_ = nullptr;
  bool trace_execute_spans_ = true;

  struct LedgerEntry {
    Closure snapshot;     // full copy: enough to redo the task
    net::NodeId thief;
  };
  // Keyed by the stolen closure's id.
  std::unordered_map<ClosureId, LedgerEntry> steal_ledger_;
  // Tasks I stole, by origin ledger: thief-side record for aborting orphans.
  std::unordered_map<ClosureId, net::NodeId> stolen_in_;
};

inline PoppedTask& PoppedTask::operator=(PoppedTask&& other) noexcept {
  if (this != &other) {
    release_();
    closure_ = other.closure_;
    core_ = other.core_;
    other.closure_ = nullptr;
  }
  return *this;
}

inline PoppedTask::~PoppedTask() { release_(); }

inline void PoppedTask::release_() noexcept {
  if (closure_ != nullptr) {
    core_->release_closure(closure_);
    closure_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Hot-path members are defined inline (in the header) so application
// translation units can fold the whole spawn / make-join / send-argument
// cycle into the task functions themselves.  The fine-grain Table 1 column
// is dominated by these few dozen instructions; keeping them out-of-line
// costs a cross-TU call per operation, several per task.  Cold halves
// (tracing, the unknown-closure log) stay in worker_core.cpp.
// ---------------------------------------------------------------------------

inline void WorkerCore::finish_spawn_(Closure* c) {
  // Lazy spawn: no id until a thief / migration / snapshot needs a global
  // name.  Tracing wants named events, so ids are eager under a tracer.
  if (!options_.lazy_spawn || tracing()) c->id = next_id();
  stats_.note_alloc();
  ++stats_.tasks_spawned;
  deque_.push(c);
  if (tracing()) {
    trace_instant(obs::EventType::kSpawn, c->id, deque_.size());
  }
}

inline void WorkerCore::spawn(TaskId task, ArgSlots args, ContRef cont,
                              std::uint32_t depth) {
  Closure* c = pool_.acquire();
  c->task = task;
  c->cont = cont;
  c->args = std::move(args);
  c->missing = 0;
  c->depth = depth;
  finish_spawn_(c);
}

inline void WorkerCore::spawn(TaskId task, std::initializer_list<Value> args,
                              ContRef cont, std::uint32_t depth) {
  Closure* c = pool_.acquire();
  c->task = task;
  c->cont = cont;
  c->args.assign_filled(args);
  c->missing = 0;
  c->depth = depth;
  finish_spawn_(c);
}

inline ClosureId WorkerCore::create_waiting(TaskId task, std::uint16_t nslots,
                                            ContRef cont,
                                            std::uint32_t depth) {
  Closure* c = pool_.acquire();
  // Joins always get an id up front: continuations name them by id.
  c->id = next_id();
  c->task = task;
  c->cont = cont;
  c->args.reset(nslots);
  c->missing = nslots;
  c->depth = depth;
  stats_.note_alloc();
  const ClosureId id = c->id;
  if (nslots == 0) {
    // Degenerate join: ready immediately.
    deque_.push(c);
  } else {
    waiting_.insert(c);
    if (pool_.pooled()) last_waiting_ = c;
  }
  return id;
}

inline WorkerCore::Deliver WorkerCore::fill_waiting_(Closure* c,
                                                     const ClosureId& target,
                                                     std::uint16_t slot,
                                                     Value value) {
  if (!c->fill(slot, std::move(value))) {
    ++stats_.args_duplicate;
    return Deliver::kDuplicate;
  }
  if (tracing()) {
    trace_instant(obs::EventType::kArgRecv, target, slot);
  }
  if (c->ready()) {
    waiting_.erase_entry(c);
    deque_.push(c);
    return Deliver::kBecameReady;
  }
  return Deliver::kFilled;
}

inline void WorkerCore::send_argument(const ContRef& cont, Value value) {
  ++stats_.synchronizations;
  if (tracing()) {
    trace_instant(obs::EventType::kArgSend, cont.target,
                  cont.home == me_ ? 0 : 1);
  }
  if (cont.home == me_) {
    // Fast path: the ref carries a pool pointer to its target.  Pool
    // storage is never freed while the core lives, so the deref is safe;
    // the id check rejects a recycled (hence renamed) closure.  Heap mode
    // never sets hints (see slot_ref), so no guard is needed here.
    Closure* target = cont.local_hint;
    if (target == nullptr || !(target->id == cont.target)) {
      target = waiting_.find(cont.target);
    }
    if (target == nullptr ||
        fill_waiting_(target, cont.target, cont.slot, std::move(value)) ==
            Deliver::kUnknown) {
      local_send_unknown_(cont.target);
    }
    return;
  }
  ++stats_.non_local_synchs;
  hooks_.send_remote(cont, std::move(value));
}

/// Context: the API surface a running task sees.  Mirrors the calls the Phish
/// preprocessor emitted into application code: spawning children, creating
/// join (waiting) closures, and sending arguments to continuations.
class Context {
 public:
  Context(WorkerCore& core, const Closure& current)
      : core_(core), current_(current) {}

  /// Spawn a ready child task; its result goes to `cont`.  `args` accepts an
  /// initializer list of Values or a std::vector<Value> (both become
  /// ArgSlots, inline-stored up to ArgSlots::kInlineSlots values).
  void spawn(TaskId task, ArgSlots args, const ContRef& cont) {
    core_.spawn(task, std::move(args), cont, current_.depth + 1);
  }
  void spawn(TaskId task, std::initializer_list<Value> args,
             const ContRef& cont) {
    core_.spawn(task, args, cont, current_.depth + 1);
  }
  void spawn(const std::string& task, ArgSlots args, const ContRef& cont) {
    spawn(core_.registry().id_of(task), std::move(args), cont);
  }

  /// Create a waiting closure (a join point) with `nslots` slots; when all
  /// are filled it runs `task` and sends the result to `cont`.
  ClosureId make_join(TaskId task, std::uint16_t nslots, const ContRef& cont) {
    return core_.create_waiting(task, nslots, cont, current_.depth + 1);
  }
  ClosureId make_join(const std::string& task, std::uint16_t nslots,
                      const ContRef& cont) {
    return make_join(core_.registry().id_of(task), nslots, cont);
  }

  /// Continuation pointing at slot `slot` of a join created here.
  ContRef slot(const ClosureId& join, std::uint16_t s) const {
    return core_.slot_ref(join, s);
  }

  /// Send a value to a continuation (the task's way of "returning").
  void send(const ContRef& cont, Value value) {
    core_.send_argument(cont, std::move(value));
  }

  /// Identity of the executing participant.
  net::NodeId worker() const { return core_.id(); }

  /// Registry lookup for spawning by name once and caching the id.
  TaskId task_id(const std::string& name) const {
    return core_.registry().id_of(name);
  }

  /// Report `units` of application work done by this task.  The simulated
  /// runtime turns the total into simulated compute time; real runtimes
  /// ignore it.  Call once or many times; amounts accumulate.
  void charge(std::uint64_t units) { core_.last_charge_ += units; }

  /// Emit a line of application output through the runtime's I/O channel
  /// (buffered to the Clearinghouse in the distributed runtimes).
  void print(const std::string& text) { core_.emit_io(text); }

 private:
  WorkerCore& core_;
  const Closure& current_;
};

}  // namespace phish
