// Identifiers of the micro-level scheduler's objects.
//
// A Phish job consists of closures (tasks plus argument slots) spread across
// participating workers.  Closures are named globally by (origin worker,
// per-origin sequence number) so that a closure keeps its identity when it is
// stolen or migrated, and continuations can be sent across the network.
#pragma once

#include <cstdint>
#include <string>

#include "net/address.hpp"
#include "serial/buffer.hpp"

namespace phish {

/// Index into the task registry; identifies *what code* a closure runs.
using TaskId = std::uint32_t;
constexpr TaskId kInvalidTask = 0xffffffffu;

/// Globally unique closure name: the worker that created it plus a sequence
/// number local to that worker.
struct ClosureId {
  net::NodeId origin;
  std::uint64_t seq = 0;

  constexpr bool valid() const noexcept { return origin.valid(); }
  constexpr auto operator<=>(const ClosureId&) const = default;

  /// Exact encoded size; encode() below and every cost model derive from
  /// this one constant.
  static constexpr std::size_t kWireBytes = 4 + 8;  // origin u32 + seq u64

  void encode(Writer& w) const {
    w.u32(origin.value);
    w.u64(seq);
  }
  static ClosureId decode(Reader& r) {
    ClosureId id;
    id.origin = net::NodeId{r.u32()};
    id.seq = r.u64();
    return id;
  }
};

inline std::string to_string(const ClosureId& id) {
  return net::to_string(id.origin) + "#" + std::to_string(id.seq);
}

struct Closure;

/// A continuation: "send your result to slot `slot` of closure `target`,
/// which lives on worker `home`".  `home` is a location hint — the closure's
/// creator initially, updated if the closure migrates.
///
/// `local_hint` is a purely node-local accelerator: when the target closure
/// was created on this node, it points straight into the creator's closure
/// pool so local argument delivery can skip the waiting-table lookup.  It is
/// never encoded, never compared, and must be revalidated (`hint->id ==
/// target`) before use — pool closures are recycled, so a stale hint names a
/// different (or no) closure.
struct ContRef {
  ClosureId target;
  std::uint16_t slot = 0;
  net::NodeId home;
  Closure* local_hint = nullptr;

  constexpr bool valid() const noexcept { return target.valid(); }
  constexpr bool operator==(const ContRef& other) const noexcept {
    // Identity only: the hint is a cache, not part of the continuation.
    return target == other.target && slot == other.slot && home == other.home;
  }

  /// Exact encoded size: target + slot u16 + home u32.
  static constexpr std::size_t kWireBytes = ClosureId::kWireBytes + 2 + 4;

  void encode(Writer& w) const {
    target.encode(w);
    w.u16(slot);
    w.u32(home.value);
  }
  static ContRef decode(Reader& r) {
    ContRef c;
    c.target = ClosureId::decode(r);
    c.slot = r.u16();
    c.home = net::NodeId{r.u32()};
    return c;
  }
};

inline std::string to_string(const ContRef& c) {
  return to_string(c.target) + "[" + std::to_string(c.slot) + "]@" +
         net::to_string(c.home);
}

}  // namespace phish

template <>
struct std::hash<phish::ClosureId> {
  std::size_t operator()(const phish::ClosureId& id) const noexcept {
    // splitmix-style combine of origin and seq.
    std::uint64_t x = (static_cast<std::uint64_t>(id.origin.value) << 40) ^
                      id.seq;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
