// Recovery-time accounting for the crash-tolerant control plane.
//
// One tracker instance lives per job (owned by the runtime) and is shared by
// the standby Clearinghouse and the workers.  It stitches the three
// timestamps of a failover into the MTTR the ISSUE asks for:
//
//   note_detect   — standby's lease watchdog noticed the primary went quiet
//   note_promote  — standby finished installing itself as primary
//   note_steal    — first successful steal completed after the promotion
//
// MTTR = first-post-failover-steal - detect, recorded into the global obs
// registry as the `recovery.mttr_ns` histogram (plus `recovery.detect_to_
// promote_ns` for the control-plane share), so benches and chaos runs export
// it through the existing BENCH_*.json path.  Worker rejoins are counted the
// same way (`recovery.rejoins`).
//
// Thread-safe: the UDP runtime calls in from many worker threads.
#pragma once

#include <cstdint>
#include <mutex>

namespace phish {

class RecoveryTracker {
 public:
  struct Snapshot {
    std::uint64_t detects = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t mttr_count = 0;     // completed detect->steal windows
    std::uint64_t last_mttr_ns = 0;   // most recent completed window
    bool awaiting_first_steal = false;
  };

  /// Standby detected a missed lease at `now_ns` (its timer clock).
  void note_detect(std::uint64_t now_ns);
  /// Standby finished promoting itself at `now_ns`.
  void note_promote(std::uint64_t now_ns);
  /// A worker completed a successful steal at `now_ns`.  Cheap no-op unless
  /// a failover window is open, so workers may call it on every steal.
  void note_steal(std::uint64_t now_ns);
  /// A previously dead (or fresh) worker registered into the running job.
  void note_rejoin();

  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot s_;
  std::uint64_t detect_ns_ = 0;
  std::uint64_t promote_ns_ = 0;
};

}  // namespace phish
