// Recovery-time accounting for the crash-tolerant control plane.
//
// One tracker instance lives per job (owned by the runtime) and is shared by
// the standby Clearinghouse and the workers.  It stitches the three
// timestamps of a failover into the MTTR the ISSUE asks for:
//
//   note_detect   — standby's lease watchdog noticed the primary went quiet
//   note_promote  — standby finished installing itself as primary
//   note_steal    — first successful steal completed after the promotion
//
// MTTR = first-post-failover-steal - detect, recorded into the global obs
// registry as the `recovery.mttr_ns` histogram (plus `recovery.detect_to_
// promote_ns` for the control-plane share), so benches and chaos runs export
// it through the existing BENCH_*.json path.  Worker rejoins are counted the
// same way (`recovery.rejoins`).
//
// Sustained-churn extension: per-node outage windows.  note_down(node, t)
// opens a window when the Clearinghouse declares a node dead (or an owner
// reclaims it); note_up(node, t) closes it when a fresh incarnation
// registers, recording the node's MTTR sample exactly.  The edge cases the
// churn engine produces are all defined:
//
//   * rejoin before the death notice — note_up with no open window is a
//     counted no-op (`rejoins_before_death`): the higher incarnation raced
//     the heartbeat detector, so there is no outage to measure;
//   * double-death of one incarnation — a second note_down on an open
//     window keeps the FIRST timestamp (the outage began at first
//     detection) and counts `duplicate_deaths`;
//   * a worker that never steals after rejoin — the failover MTTR window
//     simply stays open (`awaiting_first_steal`); nothing is recorded, and
//     snapshot() exposes the open flag so tests can assert it.
//
// Thread-safe: the UDP runtime calls in from many worker threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace phish {

class RecoveryTracker {
 public:
  struct Snapshot {
    std::uint64_t detects = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t mttr_count = 0;     // completed detect->steal windows
    std::uint64_t last_mttr_ns = 0;   // most recent completed window
    bool awaiting_first_steal = false;
    // Per-node outage accounting (sustained churn).
    std::uint64_t node_downs = 0;
    std::uint64_t node_ups = 0;
    std::uint64_t duplicate_deaths = 0;      // note_down on an open window
    std::uint64_t rejoins_before_death = 0;  // note_up with no open window
    std::uint64_t open_outages = 0;          // windows still open
    // Migration durability: ledgered cargo redelivered (or redone) after a
    // holder died — the count of migrate-then-crash compositions survived.
    std::uint64_t migration_redo = 0;
  };

  /// Standby detected a missed lease at `now_ns` (its timer clock).
  void note_detect(std::uint64_t now_ns);
  /// Standby finished promoting itself at `now_ns`.
  void note_promote(std::uint64_t now_ns);
  /// A worker completed a successful steal at `now_ns`.  Cheap no-op unless
  /// a failover window is open, so workers may call it on every steal.
  void note_steal(std::uint64_t now_ns);
  /// A previously dead (or fresh) worker registered into the running job.
  void note_rejoin();

  /// The Clearinghouse redelivered `n` ledgered migration closures after
  /// their holder died (or a successor redid dead-thief ledger entries).
  void note_migration_redo(std::uint64_t n);

  /// A node was declared dead (missed heartbeats, implicit death on a
  /// higher-incarnation register, or owner reclaim) at `now_ns`.
  void note_down(std::uint64_t node_key, std::uint64_t now_ns);
  /// The node came back (fresh incarnation registered) at `now_ns`; closes
  /// the outage window and records its length as a node-MTTR sample.
  void note_up(std::uint64_t node_key, std::uint64_t now_ns);

  Snapshot snapshot() const;

  /// All completed per-node outage lengths, in completion order.  Exact
  /// percentiles (the log2 obs histogram only brackets them).
  std::vector<std::uint64_t> node_mttr_samples() const;

  /// q in [0, 1] over a sample vector; 0 when empty.  Sorts a copy.
  static std::uint64_t percentile_ns(std::vector<std::uint64_t> samples,
                                     double q);

 private:
  mutable std::mutex mutex_;
  Snapshot s_;
  std::uint64_t detect_ns_ = 0;
  std::uint64_t promote_ns_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> down_since_;
  std::vector<std::uint64_t> node_mttr_ns_;
};

}  // namespace phish
