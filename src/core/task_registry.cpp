#include "core/task_registry.hpp"

#include <stdexcept>

namespace phish {

TaskId TaskRegistry::add(std::string name, TaskFn fn) {
  if (by_name_.count(name)) {
    throw std::invalid_argument("task already registered: " + name);
  }
  const TaskId id = static_cast<TaskId>(tasks_.size());
  by_name_.emplace(name, id);
  tasks_.push_back(TaskDesc{std::move(name), std::move(fn)});
  return id;
}

TaskId TaskRegistry::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("unknown task name: " + name);
  }
  return it->second;
}

bool TaskRegistry::has(const std::string& name) const {
  return by_name_.count(name) != 0;
}

}  // namespace phish
