#include "core/task_registry.hpp"

#include <stdexcept>

namespace phish {

TaskId TaskRegistry::add_raw(std::string name, RawTaskFn fn, void* env) {
  if (by_name_.count(name)) {
    throw std::invalid_argument("task already registered: " + name);
  }
  const TaskId id = static_cast<TaskId>(hot_.size());
  by_name_.emplace(name, id);
  hot_.push_back(TaskEntry{fn, env});
  names_.push_back(std::move(name));
  return id;
}

TaskId TaskRegistry::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("unknown task name: " + name);
  }
  return it->second;
}

bool TaskRegistry::has(const std::string& name) const {
  return by_name_.count(name) != 0;
}

}  // namespace phish
