// LocalRunner: execute a complete task graph on a single WorkerCore.
//
// This is the one-participant configuration of the micro scheduler: no
// network, no steals — the configuration whose wall-clock time is the
// T_1 ("parallel code on one processor") of the paper's serial-slowdown
// measurements, and the ground-truth executor the application tests compare
// against.
#pragma once

#include <optional>
#include <stdexcept>

#include "core/worker_core.hpp"

namespace phish {

/// Reserved node id for "the job's result sink" (the Clearinghouse plays this
/// role in the distributed runtimes).
constexpr net::NodeId kResultNode{0xfffffffe};

/// The continuation every root task is given.
inline ContRef root_continuation() {
  return ContRef{ClosureId{kResultNode, 0}, 0, kResultNode};
}

class LocalRunner {
 public:
  explicit LocalRunner(const TaskRegistry& registry,
                       ExecOrder exec_order = ExecOrder::kLifo,
                       StealOrder steal_order = StealOrder::kFifo)
      : core_(net::NodeId{0}, registry, make_hooks(), exec_order,
              steal_order) {}

  /// Full policy control (the differential tests run every CoreOptions
  /// combination through identical graphs).
  LocalRunner(const TaskRegistry& registry, const CoreOptions& options)
      : core_(net::NodeId{0}, registry, make_hooks(), options) {}

  /// Run `task(args...)` to completion and return the value it (eventually)
  /// sends to the root continuation.  Throws if the graph drains without
  /// producing a result (a task forgot to send to its continuation).
  Value run(TaskId task, std::vector<Value> args) {
    result_.reset();
    core_.spawn(task, std::move(args), root_continuation(), /*depth=*/0);
    while (auto c = core_.pop_for_execution()) {
      core_.execute(*c);
    }
    if (!result_) {
      throw std::runtime_error(
          "LocalRunner: task graph drained without a result (missing "
          "send to continuation?)");
    }
    return *result_;
  }

  Value run(const std::string& task, std::vector<Value> args) {
    return run(core_.registry().id_of(task), std::move(args));
  }

  const WorkerStats& stats() const noexcept { return core_.stats(); }
  WorkerCore& core() noexcept { return core_; }

 private:
  WorkerCore::Hooks make_hooks() {
    WorkerCore::Hooks hooks;
    hooks.send_remote = [this](const ContRef& cont, Value value) {
      if (cont.home == kResultNode) {
        result_ = std::move(value);
        return;
      }
      throw std::logic_error("LocalRunner: remote send to " +
                             to_string(cont) + " with no network");
    };
    return hooks;
  }

  std::optional<Value> result_;
  WorkerCore core_;
};

}  // namespace phish
