// Task argument values.
//
// The continuation-passing programming model moves data between tasks only by
// sending argument values into closure slots, so a small dynamically-typed
// value is the unit of all dataflow: 64-bit integers (fib, nqueens counts),
// doubles, and byte blobs (pfold histograms, ray tiles) cover the paper's
// applications.
//
// Storage is a hand-rolled tagged union rather than std::variant: every
// spawn/fill/complete moves a handful of Values, and the variant's
// jump-table dispatch for copy/move/destroy is the single largest cost on
// the task hot path.  With an explicit kind tag the common scalar cases
// compile to a tag check plus one 8-byte store.
#pragma once

#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <variant>  // std::bad_variant_access: the API's mismatch error

#include "serial/buffer.hpp"

namespace phish {

class Value {
 public:
  enum class Kind : std::uint8_t { kNil = 0, kInt = 1, kDouble = 2, kBlob = 3 };

  Value() noexcept : kind_(Kind::kNil) { int_ = 0; }
  Value(std::int64_t v) noexcept : kind_(Kind::kInt) { int_ = v; }  // NOLINT(google-explicit-constructor)
  Value(double v) noexcept : kind_(Kind::kDouble) { double_ = v; }  // NOLINT(google-explicit-constructor)
  Value(Bytes v) : kind_(Kind::kBlob) {                             // NOLINT(google-explicit-constructor)
    ::new (&blob_) Bytes(std::move(v));
  }

  Value(const Value& other) { copy_from_(other); }
  Value(Value&& other) noexcept { move_from_(other); }

  Value& operator=(const Value& other) {
    if (this != &other) {
      destroy_();
      copy_from_(other);
    }
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      destroy_();
      move_from_(other);
    }
    return *this;
  }

  ~Value() { destroy_(); }

  /// Convenience for integer literals.
  static Value of_int(std::int64_t v) { return Value(v); }

  Kind kind() const noexcept { return kind_; }
  bool is_nil() const noexcept { return kind_ == Kind::kNil; }

  std::int64_t as_int() const {
    if (kind_ != Kind::kInt) throw std::bad_variant_access();
    return int_;
  }
  double as_double() const {
    if (kind_ != Kind::kDouble) throw std::bad_variant_access();
    return double_;
  }
  const Bytes& as_blob() const {
    if (kind_ != Kind::kBlob) throw std::bad_variant_access();
    return blob_;
  }

  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::kNil: return true;
      case Kind::kInt: return int_ == other.int_;
      case Kind::kDouble: return double_ == other.double_;
      case Kind::kBlob: return blob_ == other.blob_;
    }
    return false;
  }

  void encode(Writer& w) const;
  static Value decode(Reader& r);

  /// Approximate wire size, used by cost models and stats.
  std::size_t byte_size() const noexcept;

  std::string to_string() const;

 private:
  void destroy_() noexcept {
    if (kind_ == Kind::kBlob) blob_.~Bytes();
  }
  void copy_from_(const Value& other) {
    kind_ = other.kind_;
    if (kind_ == Kind::kBlob) {
      ::new (&blob_) Bytes(other.blob_);
    } else {
      int_ = other.int_;  // covers nil (garbage ok) / int / double bits
    }
  }
  void move_from_(Value& other) noexcept {
    kind_ = other.kind_;
    if (kind_ == Kind::kBlob) {
      ::new (&blob_) Bytes(std::move(other.blob_));
    } else {
      int_ = other.int_;
    }
  }

  Kind kind_;
  union {
    std::int64_t int_;
    double double_;
    Bytes blob_;
  };
};

}  // namespace phish
