// Task argument values.
//
// The continuation-passing programming model moves data between tasks only by
// sending argument values into closure slots, so a small dynamically-typed
// value is the unit of all dataflow: 64-bit integers (fib, nqueens counts),
// doubles, and byte blobs (pfold histograms, ray tiles) cover the paper's
// applications.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>

#include "serial/buffer.hpp"

namespace phish {

class Value {
 public:
  enum class Kind : std::uint8_t { kNil = 0, kInt = 1, kDouble = 2, kBlob = 3 };

  Value() = default;
  Value(std::int64_t v) : data_(v) {}          // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                // NOLINT(google-explicit-constructor)
  Value(Bytes v) : data_(std::move(v)) {}      // NOLINT(google-explicit-constructor)

  /// Convenience for integer literals.
  static Value of_int(std::int64_t v) { return Value(v); }

  Kind kind() const noexcept { return static_cast<Kind>(data_.index()); }
  bool is_nil() const noexcept { return kind() == Kind::kNil; }

  std::int64_t as_int() const {
    if (kind() != Kind::kInt) throw std::bad_variant_access();
    return std::get<std::int64_t>(data_);
  }
  double as_double() const {
    if (kind() != Kind::kDouble) throw std::bad_variant_access();
    return std::get<double>(data_);
  }
  const Bytes& as_blob() const {
    if (kind() != Kind::kBlob) throw std::bad_variant_access();
    return std::get<Bytes>(data_);
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }

  void encode(Writer& w) const;
  static Value decode(Reader& r);

  /// Approximate wire size, used by cost models and stats.
  std::size_t byte_size() const noexcept;

  std::string to_string() const;

 private:
  std::variant<std::monostate, std::int64_t, double, Bytes> data_;
};

}  // namespace phish
