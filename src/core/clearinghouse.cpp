#include "core/clearinghouse.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace phish {

Clearinghouse::Clearinghouse(net::RpcNode& rpc, net::TimerService& timers,
                             ClearinghouseConfig config)
    : rpc_(rpc), timers_(timers), config_(config) {}

Clearinghouse::~Clearinghouse() { stop(); }

void Clearinghouse::start() {
  rpc_.serve(proto::kRpcRegister, [this](net::NodeId src, const Bytes&) {
    return handle_register(src);
  });
  rpc_.serve(proto::kRpcUnregister, [this](net::NodeId src, const Bytes&) {
    return handle_unregister(src);
  });
  rpc_.serve(proto::kRpcUpdate, [this](net::NodeId, const Bytes&) {
    return handle_update();
  });
  rpc_.serve(proto::kRpcResult, [this](net::NodeId src, const Bytes& args) {
    auto arg = proto::ArgumentMsg::decode(args);
    if (arg) {
      accept_result(src, std::move(arg->value));
    } else {
      PHISH_LOG(kWarn) << "clearinghouse: malformed result RPC from "
                       << net::to_string(src);
    }
    return Bytes{};
  });
  rpc_.set_oneway_handler(
      [this](net::Message&& m) { handle_oneway(std::move(m)); });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  if (config_.detect_failures) {
    failure_timer_ = timers_.schedule(config_.failure_check_period_ns,
                                      [this] { check_failures(); });
  }
}

void Clearinghouse::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  if (failure_timer_.valid()) {
    timers_.cancel(failure_timer_);
    failure_timer_ = net::TimerToken{};
  }
}

void Clearinghouse::set_on_result(std::function<void(const Value&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_result_ = std::move(fn);
}

void Clearinghouse::set_on_death(std::function<void(net::NodeId)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_death_ = std::move(fn);
}

void Clearinghouse::set_on_membership_change(
    std::function<void(std::size_t)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_membership_change_ = std::move(fn);
}

proto::Membership Clearinghouse::membership() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_locked();
}

proto::Membership Clearinghouse::membership_locked() const {
  proto::Membership m;
  m.epoch = epoch_;
  m.participants = participants_;
  return m;
}

std::optional<Value> Clearinghouse::result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_;
}

std::vector<proto::StatsMsg> Clearinghouse::stats_reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_reports_;
}

std::vector<proto::IoMsg> Clearinghouse::io_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_log_;
}

std::vector<net::NodeId> Clearinghouse::declared_dead() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_;
}

std::map<net::NodeId, std::uint64_t> Clearinghouse::join_times() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return join_times_;
}

Bytes Clearinghouse::handle_register(net::NodeId src) {
  std::function<void(std::size_t)> notify;
  std::size_t count = 0;
  bool already_done = false;
  Bytes reply;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(participants_.begin(), participants_.end(), src) ==
        participants_.end()) {
      participants_.push_back(src);
      ++epoch_;
      join_times_.emplace(src, timers_.now_ns());
    }
    last_heartbeat_[src] = timers_.now_ns();
    reply = membership_locked().encode();
    notify = on_membership_change_;
    count = participants_.size();
    already_done = result_.has_value();
  }
  if (already_done) {
    // The job finished while this worker was joining (the shutdown broadcast
    // predates its membership): tell it directly.
    rpc_.send_oneway(src, proto::kShutdown, {});
  }
  if (notify) notify(count);
  return reply;
}

Bytes Clearinghouse::handle_unregister(net::NodeId src) {
  std::function<void(std::size_t)> notify;
  std::size_t count = 0;
  Bytes reply;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(participants_.begin(), participants_.end(), src);
    if (it != participants_.end()) {
      participants_.erase(it);
      ++epoch_;
    }
    last_heartbeat_.erase(src);
    reply = membership_locked().encode();
    notify = on_membership_change_;
    count = participants_.size();
  }
  if (notify) notify(count);
  return reply;
}

Bytes Clearinghouse::handle_update() {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_locked().encode();
}

void Clearinghouse::handle_oneway(net::Message&& message) {
  switch (message.type) {
    case proto::kHeartbeat: {
      std::lock_guard<std::mutex> lock(mutex_);
      last_heartbeat_[message.src] = timers_.now_ns();
      break;
    }
    case proto::kArgument: {
      auto arg = proto::ArgumentMsg::decode(message.payload);
      if (!arg) {
        PHISH_LOG(kWarn) << "clearinghouse: malformed argument from "
                         << net::to_string(message.src);
        return;
      }
      accept_result(message.src, std::move(arg->value));
      break;
    }
    case proto::kStatsReport: {
      auto stats = proto::StatsMsg::decode(message.payload);
      if (!stats) return;
      std::lock_guard<std::mutex> lock(mutex_);
      stats_reports_.push_back(std::move(*stats));
      break;
    }
    case proto::kIo: {
      auto io = proto::IoMsg::decode(message.payload);
      if (!io) return;
      std::lock_guard<std::mutex> lock(mutex_);
      io_log_.push_back(std::move(*io));
      break;
    }
    default:
      PHISH_LOG(kDebug) << "clearinghouse: unexpected message type "
                        << message.type;
  }
}

void Clearinghouse::accept_result(net::NodeId, Value value) {
  std::function<void(const Value&)> notify;
  std::vector<net::NodeId> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (result_.has_value()) return;  // duplicate (redo or retransmit)
    result_ = value;
    notify = on_result_;
    targets = participants_;
  }
  // The job is done: tell every participant to shut down.
  for (net::NodeId p : targets) {
    rpc_.send_oneway(p, proto::kShutdown, {});
  }
  if (notify) notify(value);
}

void Clearinghouse::check_failures() {
  std::vector<net::NodeId> newly_dead;
  std::vector<net::NodeId> survivors;
  std::function<void(net::NodeId)> notify_death;
  std::function<void(std::size_t)> notify_membership;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    const std::uint64_t now = timers_.now_ns();
    for (auto it = participants_.begin(); it != participants_.end();) {
      const auto hb = last_heartbeat_.find(*it);
      const std::uint64_t last = hb == last_heartbeat_.end() ? 0 : hb->second;
      if (now - last > config_.heartbeat_timeout_ns) {
        newly_dead.push_back(*it);
        dead_.push_back(*it);
        last_heartbeat_.erase(*it);
        it = participants_.erase(it);
        ++epoch_;
      } else {
        ++it;
      }
    }
    survivors = participants_;
    notify_death = on_death_;
    notify_membership = on_membership_change_;
    // Re-arm.
    failure_timer_ = timers_.schedule(config_.failure_check_period_ns,
                                      [this] { check_failures(); });
  }
  for (net::NodeId dead : newly_dead) {
    PHISH_LOG(kInfo) << "clearinghouse: participant " << net::to_string(dead)
                     << " declared dead";
    const Bytes payload = proto::DeadMsg{dead}.encode();
    for (net::NodeId p : survivors) {
      rpc_.send_oneway(p, proto::kDead, payload);
    }
    if (notify_death) notify_death(dead);
  }
  if (!newly_dead.empty() && notify_membership) {
    notify_membership(survivors.size());
  }
}

}  // namespace phish
