#include "core/clearinghouse.hpp"

#include <algorithm>

#include "core/recovery.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace phish {

Clearinghouse::Clearinghouse(net::RpcNode& rpc, net::TimerService& timers,
                             ClearinghouseConfig config)
    : rpc_(rpc), timers_(timers), config_(config) {}

Clearinghouse::~Clearinghouse() { stop(); }

void Clearinghouse::install_primary_handlers() {
  rpc_.serve(proto::kRpcRegister, [this](net::NodeId src, const Bytes& args) {
    return handle_register(src, args);
  });
  rpc_.serve(proto::kRpcUnregister, [this](net::NodeId src, const Bytes&) {
    return handle_unregister(src);
  });
  rpc_.serve(proto::kRpcUpdate, [this](net::NodeId, const Bytes& args) {
    return handle_update(args);
  });
  rpc_.serve(proto::kRpcResult, [this](net::NodeId src, const Bytes& args) {
    auto arg = proto::ArgumentMsg::decode(args);
    if (arg) {
      accept_result(src, std::move(arg->value));
    } else {
      PHISH_LOG(kWarn) << "clearinghouse: malformed result RPC from "
                       << net::to_string(src);
    }
    return Bytes{};
  });
  rpc_.serve(proto::kRpcMigrateLedger,
             [this](net::NodeId src, const Bytes& args) {
               return handle_migration_ledger(src, args);
             });
  rpc_.set_oneway_handler(
      [this](net::Message&& m) { handle_oneway(std::move(m)); });
}

void Clearinghouse::start() {
  install_primary_handlers();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = true;
  role_ = Role::kPrimary;
  if (config_.detect_failures) {
    failure_timer_ = timers_.schedule(config_.failure_check_period_ns,
                                      [this] { check_failures(); });
  }
  if (peer_.valid() && !replicate_timer_.valid()) {
    replicate_timer_ = timers_.schedule(config_.replicate_period_ns,
                                        [this] { replicate_tick(); });
  }
}

void Clearinghouse::start_standby(net::NodeId primary) {
  // Only the delta method is served: every other RPC (register, update,
  // result) goes unanswered, so a worker that tries the standby too early
  // times out and rotates back to the primary.
  rpc_.serve(proto::kRpcChDelta, [this](net::NodeId src, const Bytes& args) {
    return handle_delta(src, args);
  });
  rpc_.set_oneway_handler(
      [this](net::Message&& m) { handle_oneway(std::move(m)); });
  std::lock_guard<std::mutex> lock(mutex_);
  role_ = Role::kStandby;
  peer_ = primary;
  running_ = true;
  last_delta_ns_ = timers_.now_ns();  // fresh lease until the first delta
  lease_timer_ = timers_.schedule(config_.lease_check_period_ns,
                                  [this] { lease_tick(); });
}

void Clearinghouse::set_standby(net::NodeId standby) {
  std::lock_guard<std::mutex> lock(mutex_);
  peer_ = standby;
  if (running_ && role_ == Role::kPrimary && !replicate_timer_.valid()) {
    replicate_timer_ = timers_.schedule(config_.replicate_period_ns,
                                        [this] { replicate_tick(); });
  }
}

void Clearinghouse::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  for (net::TimerToken* t : {&failure_timer_, &replicate_timer_,
                             &lease_timer_}) {
    if (t->valid()) {
      timers_.cancel(*t);
      *t = net::TimerToken{};
    }
  }
}

void Clearinghouse::halt() {
  stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    role_ = Role::kHalted;
  }
  rpc_.set_paused(true);
}

Clearinghouse::Role Clearinghouse::role() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return role_;
}

std::uint64_t Clearinghouse::view() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return view_;
}

void Clearinghouse::set_on_result(std::function<void(const Value&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_result_ = std::move(fn);
}

void Clearinghouse::set_on_death(std::function<void(net::NodeId)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_death_ = std::move(fn);
}

void Clearinghouse::set_on_membership_change(
    std::function<void(std::size_t)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_membership_change_ = std::move(fn);
}

void Clearinghouse::set_on_promoted(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_promoted_ = std::move(fn);
}

proto::Membership Clearinghouse::membership() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_locked();
}

proto::Membership Clearinghouse::membership_locked() const {
  proto::Membership m;
  m.epoch = epoch_;
  m.participants = participants_;
  return m;
}

std::optional<Value> Clearinghouse::result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_;
}

std::vector<proto::StatsMsg> Clearinghouse::stats_reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_reports_;
}

std::vector<proto::IoMsg> Clearinghouse::io_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_log_;
}

std::vector<net::NodeId> Clearinghouse::declared_dead() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_;
}

std::map<net::NodeId, std::uint64_t> Clearinghouse::join_times() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return join_times_;
}

std::size_t Clearinghouse::migration_ledger_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return migration_ledger_.size();
}

Bytes Clearinghouse::handle_register(net::NodeId src, const Bytes& args) {
  auto reg = proto::RegisterMsg::decode(args);
  const std::uint32_t inc = reg ? reg->incarnation : 1;
  const std::uint64_t known_epoch = reg ? reg->known_epoch : 0;
  std::function<void(std::size_t)> notify;
  std::function<void(net::NodeId)> notify_death;
  std::size_t count = 0;
  bool already_done = false;
  bool implicit_death = false;
  bool rejoined = false;
  std::vector<net::NodeId> death_targets;
  std::vector<PendingRedelivery> redeliveries;
  std::uint64_t view = 0;
  std::uint64_t now = 0;
  Bytes reply;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    now = timers_.now_ns();
    const auto known = incarnations_.find(src);
    const std::uint32_t prev =
        known == incarnations_.end() ? 0 : known->second;
    if (inc < prev) {
      // A previous incarnation's register arriving late: don't resurrect it.
      return membership_locked().encode();
    }
    if (inc > prev) {
      // `inc > 1` means some earlier incarnation of this node existed, even
      // if we never saw it (a standby promotes without the incarnation map;
      // incarnations start at 1 by construction).
      rejoined = prev > 0 || inc > 1;
      auto it = std::find(participants_.begin(), participants_.end(), src);
      if (it != participants_.end() && rejoined) {
        // Still listed under the older incarnation: the crash beat the
        // heartbeat timeout (or a freshly promoted primary holds a stale
        // snapshot).  That incarnation is implicitly dead — survivors must
        // redo its stolen work before the replacement is admitted.
        participants_.erase(it);
        dead_.push_back(src);
        ++epoch_;
        log_change_locked(src, /*joined=*/false);
        implicit_death = true;
        death_targets = participants_;  // src is already gone from the list
        drop_migrations_from_locked(src);
      }
    }
    incarnations_[src] = inc;
    if (std::find(participants_.begin(), participants_.end(), src) ==
        participants_.end()) {
      participants_.push_back(src);
      ++epoch_;
      log_change_locked(src, /*joined=*/true);
      join_times_.emplace(src, now);
    }
    last_heartbeat_[src] = now;
    // A caller that presented its known epoch opted into delta replies; a
    // legacy caller (known_epoch == 0) gets the full snapshot it expects.
    if (known_epoch > 0) {
      reply = membership_update_locked(known_epoch).encode();
    } else {
      reply = membership_locked().encode();
      obs::Registry::global().counter("ch.membership.full_replies").inc();
    }
    notify = on_membership_change_;
    notify_death = on_death_;
    count = participants_.size();
    already_done = result_.has_value();
    view = view_;
    // An implicit death may have orphaned ledgered cargo (the old
    // incarnation held it), and a fresh joiner may unblock an entry that
    // had no eligible redelivery target.
    redeliveries = scan_migrations_locked();
  }
  send_redeliveries(std::move(redeliveries));
  if (implicit_death) {
    PHISH_LOG(kInfo) << "clearinghouse: " << net::to_string(src)
                     << " re-registered as incarnation " << inc
                     << "; declaring its previous incarnation dead";
    broadcast_death(src, death_targets, view);
    if (notify_death) notify_death(src);
  }
  if (rejoined && tracker_ != nullptr) {
    tracker_->note_rejoin();
    // Closes the outage window opened when the old incarnation was declared
    // dead; if the rejoin beat the death notice (implicit death above),
    // there is no window and the tracker counts the inversion instead.
    tracker_->note_up(src.value, now);
  }
  if (already_done) {
    // The job finished while this worker was joining (the shutdown broadcast
    // predates its membership): tell it directly.
    rpc_.send_oneway(src, proto::kShutdown, {});
  }
  if (notify) notify(count);
  return reply;
}

Bytes Clearinghouse::handle_unregister(net::NodeId src) {
  std::function<void(std::size_t)> notify;
  std::size_t count = 0;
  Bytes reply;
  std::vector<std::pair<net::NodeId, std::uint64_t>> retires;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(participants_.begin(), participants_.end(), src);
    if (it != participants_.end()) {
      participants_.erase(it);
      ++epoch_;
      log_change_locked(src, /*joined=*/false);
    }
    last_heartbeat_.erase(src);
    // A graceful unregister means src finished or handed off everything it
    // held: entries naming it as holder are completed obligations.  (A
    // departing worker with cargo registers its own migration first, which
    // already retired these via the superseding-drain rule.)
    for (auto mit = migration_ledger_.begin();
         mit != migration_ledger_.end();) {
      if (mit->second.record.holder == src) {
        const net::NodeId origin = mit->second.record.from;
        if (origin.valid() && origin != src) {
          retires.emplace_back(origin, mit->first);
        }
        mit = migration_ledger_.erase(mit);
      } else {
        ++mit;
      }
    }
    reply = membership_locked().encode();
    notify = on_membership_change_;
    count = participants_.size();
  }
  send_retirements(retires);
  if (notify) notify(count);
  return reply;
}

Bytes Clearinghouse::handle_update(const Bytes& args) {
  const auto req = proto::UpdateRequest::decode(args);
  const std::uint64_t since = req ? req->since_epoch : 0;
  std::lock_guard<std::mutex> lock(mutex_);
  // since == 0 is both "legacy caller" (empty payload) and "knows nothing";
  // either way the full snapshot is the right answer.
  if (since == 0) {
    obs::Registry::global().counter("ch.membership.full_replies").inc();
    return membership_locked().encode();
  }
  return membership_update_locked(since).encode();
}

Bytes Clearinghouse::handle_migration_ledger(net::NodeId src,
                                             const Bytes& args) {
  (void)src;
  auto msg = proto::MigrationLedgerMsg::decode(args);
  Writer reply;
  if (!msg || msg->migration_id == 0) {
    reply.boolean(false);
    return reply.take();
  }
  std::vector<PendingRedelivery> sends;
  std::vector<std::pair<net::NodeId, std::uint64_t>> retires;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = migration_ledger_.find(msg->migration_id);
    if (it == migration_ledger_.end()) {
      // Registration.  The origin drained its whole core and steal ledger
      // into this record, so any entry it currently holds (cargo it adopted
      // from an earlier migration) is subsumed: retire those first, exactly
      // like a worker's superseding drain retires its inbound obligations.
      for (auto old = migration_ledger_.begin();
           old != migration_ledger_.end();) {
        if (old->second.record.holder == msg->from &&
            !old->second.redelivery_in_flight) {
          // The superseding snapshot carries every fill the old cargo ever
          // absorbed, so the old entry's origin stub no longer needs its
          // replay log for this migration.
          if (old->second.record.from.valid()) {
            retires.emplace_back(old->second.record.from, old->first);
          }
          old = migration_ledger_.erase(old);
        } else {
          ++old;
        }
      }
      MigrationEntry e;
      e.record = std::move(*msg);
      const auto inc = incarnations_.find(e.record.holder);
      e.holder_inc = inc == incarnations_.end() ? 0 : inc->second;
      migration_ledger_.emplace(e.record.migration_id, std::move(e));
    } else {
      // Holder update (or a registration retransmit hitting the reply
      // cache miss path): re-point the entry.  The cargo snapshot stored at
      // registration stays authoritative — the update carries none.
      //
      // One exception: once the step-3 confirm moved the holder off the
      // origin, a late duplicate of the ORIGINAL registration (holder ==
      // from, reordered or retransmitted past the reply cache) must not
      // re-point the entry back.  The handshake never legitimately returns
      // a holder to its origin (successors are drawn from the origin's
      // peer list, which excludes it, and redelivery skips `from` too), and
      // accepting the stale frame would let the origin's graceful
      // unregister retire the entry — stranding the successor's inherited
      // cargo, the exact window this ledger exists to close.
      MigrationEntry& e = it->second;
      const bool stale_registration_replay =
          msg->holder == e.record.from && e.record.holder != e.record.from;
      if (!stale_registration_replay) {
        e.record.holder = msg->holder;
        const auto inc = incarnations_.find(msg->holder);
        e.holder_inc = inc == incarnations_.end() ? 0 : inc->second;
      }
    }
    // The named holder may already be dead (it crashed between accepting
    // the cargo and this update arriving): redeliver immediately rather
    // than waiting for the next failure-detector tick.
    sends = scan_migrations_locked();
  }
  send_retirements(retires);
  send_redeliveries(std::move(sends));
  reply.boolean(true);
  return reply.take();
}

void Clearinghouse::send_retirements(
    const std::vector<std::pair<net::NodeId, std::uint64_t>>& retires) {
  for (const auto& [origin, mid] : retires) {
    const Bytes notice =
        proto::ControlMsg{proto::ControlMsg::kMigrationRetired, origin, mid}
            .encode();
    rpc_.call(origin, proto::kRpcControl, notice, [](net::RpcResult) {},
              config_.control_policy);
  }
}

void Clearinghouse::drop_migrations_from_locked(net::NodeId dead) {
  for (auto it = migration_ledger_.begin(); it != migration_ledger_.end();) {
    if (it->second.record.from == dead) {
      // The origin crashed: its victims' incarnation-blind death-redo
      // re-executes everything it ever stole, and redelivered waiting joins
      // whose argument fills route through the crashed origin's (now gone)
      // forwarding stub could never complete.  The ledger entry would only
      // duplicate work, so drop it.
      it = migration_ledger_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<Clearinghouse::PendingRedelivery>
Clearinghouse::scan_migrations_locked() {
  std::vector<PendingRedelivery> sends;
  if (role_ != Role::kPrimary || !running_) return sends;
  const auto is_participant = [this](net::NodeId n) {
    return std::find(participants_.begin(), participants_.end(), n) !=
           participants_.end();
  };
  const auto ever_died = [this](net::NodeId n) {
    return std::find(dead_.begin(), dead_.end(), n) != dead_.end();
  };
  for (auto it = migration_ledger_.begin(); it != migration_ledger_.end();) {
    MigrationEntry& e = it->second;
    // Orphaned: the holder left the membership, or it is back in the list
    // but as a fresh incarnation (the crash that lost the cargo beat the
    // failure detector, so a pure membership check would miss it).
    bool orphaned = !is_participant(e.record.holder);
    if (!orphaned && e.holder_inc != 0) {
      const auto inc = incarnations_.find(e.record.holder);
      if (inc != incarnations_.end() && inc->second != e.holder_inc) {
        orphaned = true;
      }
    }
    if (!orphaned || e.redelivery_in_flight) {
      ++it;
      continue;
    }
    if (ever_died(e.record.from) && !is_participant(e.record.from)) {
      drop_migrations_from_locked(e.record.from);
      it = migration_ledger_.begin();  // iterator invalidated by the drop
      continue;
    }
    // Pre-redeem steal-ledger entries whose thief is currently dead: the
    // new holder would only redo them immediately, and shipping them as
    // plain cargo spares it the thief-liveness bookkeeping.
    auto& rec = e.record;
    for (auto li = rec.ledger.begin(); li != rec.ledger.end();) {
      if (ever_died(li->thief) && !is_participant(li->thief)) {
        rec.closures.push_back(std::move(li->snapshot));
        li = rec.ledger.erase(li);
      } else {
        ++li;
      }
    }
    // Lowest-id live participant other than the origin takes the cargo
    // (deterministic, and worker 0 — fault-immune — is always eligible).
    net::NodeId target{};
    for (net::NodeId p : participants_) {
      if (p == rec.from) continue;
      if (!target.valid() || p.value < target.value) target = p;
    }
    if (!target.valid()) {
      ++it;  // nobody can take it yet; retry when membership changes
      continue;
    }
    proto::MigrateMsg m;
    m.from = rec.from;
    m.closures = rec.closures;
    m.migration_id = rec.migration_id;
    m.redelivery = true;
    m.ledger = rec.ledger;
    PendingRedelivery p;
    p.target = target;
    p.migration_id = rec.migration_id;
    p.cargo_count = rec.closures.size();
    p.payload = m.encode();
    e.redelivery_in_flight = true;
    sends.push_back(std::move(p));
    ++it;
  }
  return sends;
}

void Clearinghouse::send_redeliveries(std::vector<PendingRedelivery> sends) {
  for (PendingRedelivery& s : sends) {
    const net::NodeId target = s.target;
    const std::uint64_t mid = s.migration_id;
    const std::size_t cargo = s.cargo_count;
    PHISH_LOG(kInfo) << "clearinghouse: re-delivering migration " << mid
                     << " (" << cargo << " closures) to "
                     << net::to_string(target);
    rpc_.call(
        target, proto::kRpcMigrate, std::move(s.payload),
        [this, target, mid, cargo](net::RpcResult r) {
          bool accepted = false;
          if (r.ok) {
            Reader rd(r.reply);
            accepted = rd.boolean() && rd.ok();
          }
          net::NodeId origin{};
          {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = migration_ledger_.find(mid);
            if (it == migration_ledger_.end()) return;
            it->second.redelivery_in_flight = false;
            if (!accepted) return;  // next failure-check scan retries
            it->second.record.holder = target;
            const auto inc = incarnations_.find(target);
            it->second.holder_inc =
                inc == incarnations_.end() ? 0 : inc->second;
            origin = it->second.record.from;
          }
          if (tracker_ != nullptr) tracker_->note_migration_redo(cargo);
          // Re-target the departed origin's forwarding stub at the new
          // holder and have it replay the argument fills it logged since
          // the drain — without this, fills routed through the stub while
          // the old holder was dying would be lost.
          if (origin.valid() && origin != target) {
            const Bytes reroute =
                proto::ControlMsg{proto::ControlMsg::kReroute, target, mid}
                    .encode();
            rpc_.call(origin, proto::kRpcControl, reroute,
                      [](net::RpcResult) {}, config_.control_policy);
          }
        },
        config_.control_policy);
  }
}

void Clearinghouse::log_change_locked(net::NodeId node, bool joined) {
  change_log_.push_back(EpochChange{epoch_, node, joined});
  while (change_log_.size() > config_.membership_log_limit) {
    change_log_.pop_front();
  }
}

proto::MembershipUpdate Clearinghouse::membership_update_locked(
    std::uint64_t since_epoch) const {
  proto::MembershipUpdate u;
  u.epoch = epoch_;
  if (since_epoch >= epoch_) {
    // Caller is current (or from the future, after a failover rolled the
    // epoch back; the full set below handles that case).
    if (since_epoch == epoch_) {
      obs::Registry::global().counter("ch.membership.delta_replies").inc();
      return u;  // empty delta
    }
  }
  // The log covers (since_epoch, epoch_] iff no retained gap precedes it.
  const bool covered = since_epoch < epoch_ && !change_log_.empty() &&
                       change_log_.front().epoch <= since_epoch + 1;
  if (!covered) {
    u.full = true;
    u.participants = participants_;
    obs::Registry::global().counter("ch.membership.full_replies").inc();
    return u;
  }
  // Net delta: a later change cancels an earlier one for the same node, so
  // leave-then-rejoin within the window collapses to "no change".
  for (const EpochChange& c : change_log_) {
    if (c.epoch <= since_epoch) continue;
    if (c.joined) {
      auto it = std::find(u.left.begin(), u.left.end(), c.node);
      if (it != u.left.end()) {
        u.left.erase(it);
      } else {
        u.joined.push_back(c.node);
      }
    } else {
      auto it = std::find(u.joined.begin(), u.joined.end(), c.node);
      if (it != u.joined.end()) {
        u.joined.erase(it);
      } else {
        u.left.push_back(c.node);
      }
    }
  }
  obs::Registry::global().counter("ch.membership.delta_replies").inc();
  return u;
}

Bytes Clearinghouse::handle_delta(net::NodeId, const Bytes& args) {
  auto d = proto::ChDeltaMsg::decode(args);
  std::lock_guard<std::mutex> lock(mutex_);
  proto::ChDeltaAck ack;
  if (!d || role_ != Role::kStandby || d->view < view_) {
    // Not a standby any more (or a stale sender): fence the caller.  A
    // demoted/partitioned primary seeing promoted=true with a higher view
    // silences itself.
    ack.applied_seq = applied_seq_;
    ack.io_count = io_log_.size();
    ack.stats_count = stats_reports_.size();
    ack.view = view_;
    ack.promoted = role_ == Role::kPrimary;
    return ack.encode();
  }
  last_delta_ns_ = timers_.now_ns();
  if (d->seq > applied_seq_) {
    applied_seq_ = d->seq;
    if (d->view > view_) view_ = d->view;
    if (d->epoch > epoch_) epoch_ = d->epoch;
    participants_ = d->participants;
    dead_ = d->dead;
    if (d->result && !result_) result_ = *d->result;
    // Append exactly the unseen suffix of each replicated tail (a
    // retransmitted delta may overlap what we already hold).
    for (std::size_t i = 0; i < d->io.size(); ++i) {
      if (d->io_base + i == io_log_.size()) io_log_.push_back(d->io[i]);
    }
    for (std::size_t i = 0; i < d->stats.size(); ++i) {
      if (d->stats_base + i == stats_reports_.size()) {
        stats_reports_.push_back(d->stats[i]);
      }
    }
    // The delta ships the whole migration ledger: rebuild rather than
    // merge.  holder_inc stays 0 (the standby has no incarnation map), so
    // after a promotion only membership-based orphan checks apply.
    migration_ledger_.clear();
    for (auto& mig : d->migrations) {
      MigrationEntry e;
      e.record = std::move(mig);
      const std::uint64_t mid = e.record.migration_id;
      migration_ledger_.emplace(mid, std::move(e));
    }
  }
  ack.applied_seq = applied_seq_;
  ack.io_count = io_log_.size();
  ack.stats_count = stats_reports_.size();
  ack.view = view_;
  ack.promoted = false;
  return ack.encode();
}

void Clearinghouse::handle_oneway(net::Message&& message) {
  if (message.type == proto::kHeartbeat) {
    // Both roles track liveness: workers heartbeat every replica, so a
    // promoted standby starts with a warm map instead of declaring everyone
    // dead at once.
    std::lock_guard<std::mutex> lock(mutex_);
    last_heartbeat_[message.src] = timers_.now_ns();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A standby's only other legitimate input is the delta RPC; io or stats
    // that strayed here would corrupt the watermark-replicated logs.
    if (role_ != Role::kPrimary) return;
  }
  switch (message.type) {
    case proto::kArgument: {
      auto arg = proto::ArgumentMsg::decode(message.payload);
      if (!arg) {
        PHISH_LOG(kWarn) << "clearinghouse: malformed argument from "
                         << net::to_string(message.src);
        return;
      }
      accept_result(message.src, std::move(arg->value));
      break;
    }
    case proto::kStatsReport: {
      auto stats = proto::StatsMsg::decode(message.payload);
      if (!stats) return;
      std::lock_guard<std::mutex> lock(mutex_);
      stats_reports_.push_back(std::move(*stats));
      break;
    }
    case proto::kIo: {
      auto io = proto::IoMsg::decode(message.payload);
      if (!io) return;
      std::lock_guard<std::mutex> lock(mutex_);
      io_log_.push_back(std::move(*io));
      break;
    }
    default:
      PHISH_LOG(kDebug) << "clearinghouse: unexpected message type "
                        << message.type;
  }
}

void Clearinghouse::accept_result(net::NodeId, Value value) {
  std::function<void(const Value&)> notify;
  std::vector<net::NodeId> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (result_.has_value()) return;  // duplicate (redo or retransmit)
    result_ = value;
    notify = on_result_;
    targets = participants_;
  }
  // The job is done: tell every participant to shut down.
  for (net::NodeId p : targets) {
    rpc_.send_oneway(p, proto::kShutdown, {});
  }
  if (notify) notify(value);
}

void Clearinghouse::check_failures() {
  std::vector<net::NodeId> newly_dead;
  std::vector<net::NodeId> survivors;
  std::vector<PendingRedelivery> redeliveries;
  std::function<void(net::NodeId)> notify_death;
  std::function<void(std::size_t)> notify_membership;
  std::uint64_t view = 0;
  std::uint64_t now = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || role_ != Role::kPrimary) return;
    now = timers_.now_ns();
    for (auto it = participants_.begin(); it != participants_.end();) {
      const auto hb = last_heartbeat_.find(*it);
      const std::uint64_t last = hb == last_heartbeat_.end() ? 0 : hb->second;
      if (now - last > config_.heartbeat_timeout_ns) {
        newly_dead.push_back(*it);
        dead_.push_back(*it);
        last_heartbeat_.erase(*it);
        ++epoch_;
        log_change_locked(*it, /*joined=*/false);
        it = participants_.erase(it);
      } else {
        ++it;
      }
    }
    for (net::NodeId dead : newly_dead) drop_migrations_from_locked(dead);
    // Every tick doubles as the retry loop for redeliveries that were
    // rejected or lost in flight.
    redeliveries = scan_migrations_locked();
    survivors = participants_;
    notify_death = on_death_;
    notify_membership = on_membership_change_;
    view = view_;
    // Re-arm.
    failure_timer_ = timers_.schedule(config_.failure_check_period_ns,
                                      [this] { check_failures(); });
  }
  for (net::NodeId dead : newly_dead) {
    PHISH_LOG(kInfo) << "clearinghouse: participant " << net::to_string(dead)
                     << " declared dead";
    if (tracker_ != nullptr) tracker_->note_down(dead.value, now);
    broadcast_death(dead, survivors, view);
    if (notify_death) notify_death(dead);
  }
  send_redeliveries(std::move(redeliveries));
  if (!newly_dead.empty() && notify_membership) {
    notify_membership(survivors.size());
  }
}

void Clearinghouse::broadcast_death(net::NodeId dead,
                                    const std::vector<net::NodeId>& to,
                                    std::uint64_t view) {
  // Death notices drive redo; a lost one would strand stolen work forever.
  // They ride the acked RPC path (retransmitted until each peer confirms),
  // not the old best-effort kDead oneway.
  const Bytes payload =
      proto::ControlMsg{proto::ControlMsg::kDeadNotice, dead, view}.encode();
  for (net::NodeId p : to) {
    rpc_.call(p, proto::kRpcControl, payload, [](net::RpcResult) {},
              config_.control_policy);
  }
}

void Clearinghouse::replicate_tick() {
  Bytes payload;
  net::NodeId standby{};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || role_ != Role::kPrimary || !peer_.valid()) return;
    replicate_timer_ = timers_.schedule(config_.replicate_period_ns,
                                        [this] { replicate_tick(); });
    if (delta_in_flight_) return;  // don't pile deltas on a slow standby
    proto::ChDeltaMsg d;
    d.seq = ++delta_seq_;
    d.view = view_;
    d.epoch = epoch_;
    d.participants = participants_;
    d.dead = dead_;
    d.result = result_;
    d.io_base = io_acked_;
    for (std::size_t i = io_acked_;
         i < io_log_.size() && d.io.size() < config_.max_delta_tail; ++i) {
      d.io.push_back(io_log_[i]);
    }
    d.stats_base = stats_acked_;
    for (std::size_t i = stats_acked_;
         i < stats_reports_.size() && d.stats.size() < config_.max_delta_tail;
         ++i) {
      d.stats.push_back(stats_reports_[i]);
    }
    // Full migration-ledger snapshot each delta: the ledger is small (one
    // entry per in-flight graceful departure) and a promoted standby must
    // be able to redeliver orphaned cargo on its own.
    for (const auto& [mid, entry] : migration_ledger_) {
      d.migrations.push_back(entry.record);
    }
    payload = d.encode();
    standby = peer_;
    delta_in_flight_ = true;
  }
  rpc_.call(
      standby, proto::kRpcChDelta, std::move(payload),
      [this](net::RpcResult r) {
        bool demoted = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          delta_in_flight_ = false;
          if (!r.ok) return;  // next tick retries from the same watermarks
          auto ack = proto::ChDeltaAck::decode(r.reply);
          if (!ack) return;
          if (ack->promoted && ack->view > view_) {
            // The standby promoted past us while we were cut off.  Exactly
            // one replica may act as primary: go silent.
            role_ = Role::kDemoted;
            running_ = false;
            for (net::TimerToken* t : {&failure_timer_, &replicate_timer_}) {
              if (t->valid()) {
                timers_.cancel(*t);
                *t = net::TimerToken{};
              }
            }
            demoted = true;
          } else {
            io_acked_ = std::max(io_acked_,
                                 static_cast<std::size_t>(ack->io_count));
            stats_acked_ = std::max(
                stats_acked_, static_cast<std::size_t>(ack->stats_count));
          }
        }
        if (demoted) {
          PHISH_LOG(kInfo) << "clearinghouse " << net::to_string(rpc_.id())
                           << ": superseded by promoted standby; demoting";
          rpc_.set_paused(true);
        }
      },
      config_.replicate_policy);
}

void Clearinghouse::lease_tick() {
  std::uint64_t now = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || role_ != Role::kStandby) return;
    now = timers_.now_ns();
    if (now - last_delta_ns_ <= config_.lease_timeout_ns) {
      lease_timer_ = timers_.schedule(config_.lease_check_period_ns,
                                      [this] { lease_tick(); });
      return;
    }
    lease_timer_ = net::TimerToken{};
  }
  PHISH_LOG(kInfo) << "clearinghouse " << net::to_string(rpc_.id())
                   << ": primary missed its lease; promoting";
  if (tracker_ != nullptr) tracker_->note_detect(now);
  promote();
}

void Clearinghouse::promote() {
  std::vector<net::NodeId> targets;
  std::vector<PendingRedelivery> redeliveries;
  std::optional<Value> result;
  std::uint64_t view = 0;
  std::uint64_t now = 0;
  std::function<void()> on_promoted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (role_ != Role::kStandby) return;
    role_ = Role::kPrimary;
    ++view_;  // strictly above every view the old primary served
    view = view_;
    now = timers_.now_ns();
    if (lease_timer_.valid()) {
      timers_.cancel(lease_timer_);
      lease_timer_ = net::TimerToken{};
    }
    // Full heartbeat grace: measure deaths from the promotion instant, not
    // from heartbeats the dying primary never shared with us.
    for (net::NodeId p : participants_) last_heartbeat_[p] = now;
    // Replicated ledger entries whose origin is already among the dead
    // follow the same drop rule the old primary would have applied.  (An
    // origin that crashed, rejoined, and departed again between two deltas
    // can slip past this — the documented loss window; its victims' redo
    // still covers the stolen portion.)
    for (net::NodeId d : dead_) {
      if (std::find(participants_.begin(), participants_.end(), d) ==
          participants_.end()) {
        drop_migrations_from_locked(d);
      }
    }
    redeliveries = scan_migrations_locked();
    targets = participants_;
    result = result_;
    if (config_.detect_failures) {
      failure_timer_ = timers_.schedule(config_.failure_check_period_ns,
                                        [this] { check_failures(); });
    }
    on_promoted = on_promoted_;
  }
  install_primary_handlers();
  PHISH_LOG(kInfo) << "clearinghouse " << net::to_string(rpc_.id())
                   << ": promoted to primary (view " << view << ", "
                   << targets.size() << " participants)";
  const Bytes announce =
      proto::ControlMsg{proto::ControlMsg::kNewPrimary, rpc_.id(), view}
          .encode();
  for (net::NodeId p : targets) {
    rpc_.call(p, proto::kRpcControl, announce, [](net::RpcResult) {},
              config_.control_policy);
  }
  send_redeliveries(std::move(redeliveries));
  if (tracker_ != nullptr) tracker_->note_promote(now);
  if (result) {
    // The job had already finished: the old primary died mid-shutdown, so
    // finish the broadcast it started.
    for (net::NodeId p : targets) {
      rpc_.send_oneway(p, proto::kShutdown, {});
    }
  }
  if (on_promoted) on_promoted();
}

}  // namespace phish
