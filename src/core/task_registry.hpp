// Task registry: maps task names to functions.
//
// Phish applications were C programs preprocessed into calls to the Phish
// scheduling library; a task that is stolen must be runnable on the thief, so
// tasks are named (the name travels on the wire) and every participant binds
// the same application binary.  Here tasks register a stable string name and
// get a dense TaskId; wire messages carry the id, and a job's participants
// agree on ids because registration order is deterministic (registration
// happens in each app's register_*() function, called explicitly).
//
// Dispatch is devirtualized: instead of a `std::function` per task (two
// dependent loads plus a vtable-like indirect call through a type-erasure
// thunk, ~3-4 ns), each task is a raw function pointer plus one opaque
// context word, packed into a flat 16-byte TaskEntry array.  Executing a
// task is an indexed load from that array and one indirect call.  Lambdas
// still register naturally: a captureless lambda (every app task) decays to
// a plain function pointer carried in the env word itself; a capturing
// callable is moved into a registry-owned holder whose address becomes env.
// Names and holders live in cold side arrays so the hot array stays dense.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/closure.hpp"

namespace phish {

class Context;  // defined in worker_core.hpp; tasks receive it when run

/// Devirtualized task entry point: the env word is whatever the registering
/// callable needed carried along (a captured-state holder, or the plain
/// function pointer itself).
using RawTaskFn = void (*)(Context&, Closure&, void* env);

/// One hot dispatch record.  16 bytes; four per cache line.
struct TaskEntry {
  RawTaskFn fn = nullptr;
  void* env = nullptr;
};

class TaskRegistry {
 public:
  /// Register a task; returns its id.  Names must be unique; a job's
  /// participants must register the same tasks in the same order so ids
  /// agree across the network.  Accepts any callable with the signature
  /// void(Context&, Closure&); captureless lambdas and plain function
  /// pointers register with no allocation.
  template <typename F>
  TaskId add(std::string name, F&& fn) {
    using Fn = std::decay_t<F>;
    using PlainFn = void (*)(Context&, Closure&);
    if constexpr (std::is_convertible_v<Fn, PlainFn>) {
      // Captureless: the function pointer *is* the context word.  The thunk
      // is a single tail-call through env; no holder, no allocation.
      const PlainFn plain = fn;
      return add_raw(
          std::move(name),
          [](Context& cx, Closure& c, void* env) {
            reinterpret_cast<PlainFn>(env)(cx, c);
          },
          reinterpret_cast<void*>(plain));
    } else {
      auto holder = std::make_unique<Holder<Fn>>(std::forward<F>(fn));
      void* env = &holder->fn;
      const TaskId id = add_raw(
          std::move(name),
          [](Context& cx, Closure& c, void* env) {
            (*static_cast<Fn*>(env))(cx, c);
          },
          env);
      holders_.push_back(std::move(holder));
      return id;
    }
  }

  /// Register a pre-devirtualized entry point directly.
  TaskId add_raw(std::string name, RawTaskFn fn, void* env);

  // Inline: entry() runs once per executed task, so it must not cost a
  // call.  The bounds check doubles as wire validation — a hostile TaskId
  // decoded off the network must fail here, not index out of bounds.
  const TaskEntry& entry(TaskId id) const {
    if (id >= hot_.size()) {
      throw std::out_of_range("unknown task id " + std::to_string(id));
    }
    return hot_[id];
  }

  /// Cold metadata: task name for logs/traces.  Bounds-checked like entry().
  const std::string& name_of(TaskId id) const {
    if (id >= names_.size()) {
      throw std::out_of_range("unknown task id " + std::to_string(id));
    }
    return names_[id];
  }

  TaskId id_of(const std::string& name) const;
  bool has(const std::string& name) const;
  std::size_t size() const noexcept { return hot_.size(); }

  /// The flat dispatch array, for cache pre-touch in benchmarks.
  const TaskEntry* entries() const noexcept { return hot_.data(); }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename F>
  struct Holder : HolderBase {
    explicit Holder(F f) : fn(std::move(f)) {}
    F fn;
  };

  std::vector<TaskEntry> hot_;       // indexed by TaskId; the dispatch path
  std::vector<std::string> names_;   // parallel cold array
  std::vector<std::unique_ptr<HolderBase>> holders_;  // capturing callables
  std::unordered_map<std::string, TaskId> by_name_;
};

}  // namespace phish
