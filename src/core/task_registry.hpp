// Task registry: maps task names to functions.
//
// Phish applications were C programs preprocessed into calls to the Phish
// scheduling library; a task that is stolen must be runnable on the thief, so
// tasks are named (the name travels on the wire) and every participant binds
// the same application binary.  Here tasks register a stable string name and
// get a dense TaskId; wire messages carry the id, and a job's participants
// agree on ids because registration order is deterministic (registration
// happens in each app's register_*() function, called explicitly).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/closure.hpp"

namespace phish {

class Context;  // defined in worker_core.hpp; tasks receive it when run

using TaskFn = std::function<void(Context&, Closure&)>;

struct TaskDesc {
  std::string name;
  TaskFn fn;
};

class TaskRegistry {
 public:
  /// Register a task; returns its id.  Names must be unique; a job's
  /// participants must register the same tasks in the same order so ids
  /// agree across the network.
  TaskId add(std::string name, TaskFn fn);

  // Inline: get() runs once per executed task, so it must not cost a call.
  const TaskDesc& get(TaskId id) const {
    if (id >= tasks_.size()) {
      throw std::out_of_range("unknown task id " + std::to_string(id));
    }
    return tasks_[id];
  }
  TaskId id_of(const std::string& name) const;
  bool has(const std::string& name) const;
  std::size_t size() const noexcept { return tasks_.size(); }

 private:
  std::vector<TaskDesc> tasks_;
  std::unordered_map<std::string, TaskId> by_name_;
};

}  // namespace phish
