// Closures: the unit of work of the micro-level scheduler.
//
// A closure names a task function (via the registry), carries argument slots
// with fill flags and a missing-count (the synchronization requirement), and
// holds the continuation its result is sent to.  A closure whose last missing
// argument arrives becomes *ready* and is pushed on the worker's ready list
// (Figure 1 of the paper).  Only ready closures are ever executed, stolen, or
// migrated.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"
#include "core/value.hpp"

namespace phish {

struct Closure {
  ClosureId id;
  TaskId task = kInvalidTask;
  ContRef cont;                 // where to send this closure's result
  std::vector<Value> args;      // argument slots
  std::vector<bool> filled;     // per-slot fill flag (idempotent sends)
  std::uint32_t missing = 0;    // slots still empty; 0 == ready
  std::uint32_t depth = 0;      // spawn-tree depth, for stats and cost models

  bool ready() const noexcept { return missing == 0; }

  /// Fill a slot.  Returns false (and changes nothing) if the slot was
  /// already filled — this makes duplicate argument sends idempotent, which
  /// the fault-tolerance redo machinery relies on.
  bool fill(std::uint16_t slot, Value value) {
    if (slot >= args.size() || filled[slot]) return false;
    args[slot] = std::move(value);
    filled[slot] = true;
    --missing;
    return true;
  }

  /// Wire encoding: everything needed to execute the closure elsewhere
  /// (steals, migration, and the steal ledger's redo snapshots).
  void encode(Writer& w) const {
    id.encode(w);
    w.u32(task);
    cont.encode(w);
    w.u32(depth);
    w.u32(static_cast<std::uint32_t>(args.size()));
    w.u32(missing);
    for (std::size_t i = 0; i < args.size(); ++i) {
      w.boolean(filled[i]);
      args[i].encode(w);
    }
  }

  static Closure decode(Reader& r) {
    Closure c;
    c.id = ClosureId::decode(r);
    c.task = r.u32();
    c.cont = ContRef::decode(r);
    c.depth = r.u32();
    const std::uint32_t n = r.u32();
    c.missing = r.u32();
    if (!r.ok() || n > 1u << 20) return c;  // refuse absurd slot counts
    c.args.resize(n);
    c.filled.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const bool f = r.boolean();
      c.filled[i] = f;
      c.args[i] = Value::decode(r);
    }
    return c;
  }

  /// Approximate wire size, for cost models and message stats.
  std::size_t byte_size() const noexcept {
    std::size_t sz = 12 + 4 + 18 + 4 + 4 + 4;
    for (const Value& v : args) sz += 1 + v.byte_size();
    return sz;
  }
};

}  // namespace phish
