// Closures: the unit of work of the micro-level scheduler.
//
// A closure names a task function (via the registry), carries argument slots
// with fill flags and a missing-count (the synchronization requirement), and
// holds the continuation its result is sent to.  A closure whose last missing
// argument arrives becomes *ready* and is pushed on the worker's ready list
// (Figure 1 of the paper).  Only ready closures are ever executed, stolen, or
// migrated.
//
// Hot-path layout: argument slots live in ArgSlots, a small-buffer container
// holding up to kInlineSlots values inline with a bitmask of fill flags, so
// the common spawn (one or two small arguments) and join (a handful of
// slots) touch no allocator at all.  Larger slot counts — wide DSL joins,
// hostile decodes — spill to a heap array that ArgSlots owns and reuses
// across reset() calls, which lets the closure pool recycle join closures
// without re-allocating.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "core/value.hpp"

namespace phish {

/// Argument-slot storage: values plus per-slot fill flags.
class ArgSlots {
 public:
  /// Slots stored inline.  Two covers the dominant fine-grain arities (one
  /// spawn argument; two-slot joins); wider tasks (nqueens, ray: up to 4)
  /// spill to the heap once per pool slot and then recycle that capacity
  /// forever (see ClosurePool).  Keeping the inline array small keeps
  /// sizeof(Closure) at ~3 cache lines instead of ~4, measurably faster on
  /// the fib Table 1 row where 3 closures are touched per tree node.
  static constexpr std::uint32_t kInlineSlots = 2;
  /// Fill flags stored in the inline bitmask; beyond this a byte array is
  /// allocated alongside the value array.
  static constexpr std::uint32_t kMaskBits = 64;

  ArgSlots() = default;

  /// All-filled construction (spawn arguments).
  ArgSlots(std::initializer_list<Value> values) {  // NOLINT(google-explicit-constructor)
    reserve_(static_cast<std::uint32_t>(values.size()));
    size_ = static_cast<std::uint32_t>(values.size());
    Value* v = values_();
    std::uint32_t i = 0;
    for (const Value& value : values) v[i++] = value;  // init-lists are const
    mark_all_filled_();
  }
  ArgSlots(std::vector<Value>&& values) {  // NOLINT(google-explicit-constructor)
    reserve_(static_cast<std::uint32_t>(values.size()));
    size_ = static_cast<std::uint32_t>(values.size());
    Value* v = values_();
    for (std::uint32_t i = 0; i < size_; ++i) v[i] = std::move(values[i]);
    mark_all_filled_();
  }
  ArgSlots(const std::vector<Value>& values)  // NOLINT(google-explicit-constructor)
      : ArgSlots(std::vector<Value>(values)) {}

  ArgSlots(const ArgSlots& other) { copy_from_(other); }
  ArgSlots(ArgSlots&& other) noexcept { move_from_(std::move(other)); }
  ArgSlots& operator=(const ArgSlots& other) {
    if (this != &other) {
      release_();
      copy_from_(other);
    }
    return *this;
  }
  ArgSlots& operator=(ArgSlots&& other) noexcept {
    if (this != &other) {
      release_();
      move_from_(std::move(other));
    }
    return *this;
  }
  ~ArgSlots() { release_(); }

  /// Re-shape to `n` empty, unfilled slots.  Keeps any heap capacity from a
  /// previous life (the closure pool relies on this to recycle wide joins
  /// without allocating).
  void reset(std::uint32_t n) {
    Value* old = values_();
    const std::uint32_t old_n = size_ < capacity_() ? size_ : capacity_();
    for (std::uint32_t i = 0; i < old_n; ++i) old[i] = Value();
    reserve_(n);
    size_ = n;
    mask_ = 0;
    if (flags_ != nullptr) {
      for (std::uint32_t i = 0; i < n; ++i) flags_[i] = 0;
    }
  }

  /// Empty (size 0), keeping heap capacity.
  void clear() { reset(0); }

  /// In-place all-filled assignment (the spawn hot path): reuses this
  /// object's storage instead of constructing a temporary and moving it,
  /// and overwrites [0, n) directly — Value assignment releases whatever a
  /// previous life left there, so reset()'s clear-then-copy double write is
  /// unnecessary.  Only the tail beyond the new size is nilled, to keep the
  /// invariant reset() relies on: slots past size_ are always nil.
  void assign_filled(std::initializer_list<Value> values) {
    const std::uint32_t n = static_cast<std::uint32_t>(values.size());
    Value* old = values_();
    const std::uint32_t old_n = size_ < capacity_() ? size_ : capacity_();
    for (std::uint32_t i = n; i < old_n; ++i) old[i] = Value();
    reserve_(n);
    Value* v = values_();
    std::uint32_t i = 0;
    for (const Value& value : values) v[i++] = value;
    size_ = n;
    mark_all_filled_();
  }

  /// Single-value all-filled assignment: the dominant spawn arity in the
  /// paper's applications (fib, nqueens, pfold all pass one value per
  /// child), with none of the initializer-list copy machinery — the value
  /// moves straight into slot 0.  Takes an rvalue reference rather than a
  /// by-value parameter: each by-value hand-off on the spawn chain is a
  /// separate tag-branch move plus destroy, and the chain is three calls
  /// deep, so reference passing saves two moves per spawn.
  void assign_filled(Value&& value) {
    Value* old = values_();
    const std::uint32_t old_n = size_ < capacity_() ? size_ : capacity_();
    for (std::uint32_t i = 1; i < old_n; ++i) old[i] = Value();
    if (flags_ != nullptr) reserve_(1);  // drop byte flags, back to the mask
    values_()[0] = std::move(value);
    size_ = 1;
    mask_ = 1;
  }

  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  Value& operator[](std::size_t i) noexcept { return values_()[i]; }
  const Value& operator[](std::size_t i) const noexcept { return values_()[i]; }
  Value* begin() noexcept { return values_(); }
  Value* end() noexcept { return values_() + size_; }
  const Value* begin() const noexcept { return values_(); }
  const Value* end() const noexcept { return values_() + size_; }

  bool filled(std::uint32_t i) const noexcept {
    if (flags_ != nullptr) return flags_[i] != 0;
    return (mask_ >> i) & 1u;
  }

  /// Fill a slot; false (and no change) if out of range or already filled.
  /// Rvalue-reference parameter for the same reason as assign_filled: the
  /// send chain (Context::send -> send_argument -> Closure::fill -> here) is
  /// deep enough that by-value passing costs three extra Value moves.
  bool fill(std::uint32_t i, Value&& value) {
    if (i >= size_ || filled(i)) return false;
    values_()[i] = std::move(value);
    set_filled_(i);
    return true;
  }

  /// Decode path: place a value and its fill flag verbatim, without the
  /// idempotence check (the wire carries the missing-count separately).
  void install(std::uint32_t i, Value value, bool is_filled) {
    values_()[i] = std::move(value);
    if (is_filled) set_filled_(i);
  }

  /// Move the values out (DSL reduce hands them to user code as a vector).
  std::vector<Value> take_vector() {
    std::vector<Value> out;
    out.reserve(size_);
    Value* v = values_();
    for (std::uint32_t i = 0; i < size_; ++i) out.push_back(std::move(v[i]));
    return out;
  }

  bool operator==(const ArgSlots& other) const {
    if (size_ != other.size_) return false;
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (filled(i) != other.filled(i)) return false;
      if (!(values_()[i] == other.values_()[i])) return false;
    }
    return true;
  }

 private:
  std::uint32_t capacity_() const noexcept {
    return heap_ != nullptr ? heap_cap_ : kInlineSlots;
  }
  Value* values_() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  const Value* values_() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }
  void set_filled_(std::uint32_t i) noexcept {
    if (flags_ != nullptr) {
      flags_[i] = 1;
    } else {
      mask_ |= std::uint64_t{1} << i;
    }
  }
  void mark_all_filled_() noexcept {
    if (flags_ != nullptr) {
      for (std::uint32_t i = 0; i < size_; ++i) flags_[i] = 1;
    } else {
      mask_ = size_ == 0 ? 0 : (~std::uint64_t{0} >> (kMaskBits - size_));
    }
  }

  /// Ensure capacity for n slots (values default-initialized on growth) and
  /// flag storage matching the final shape.  Does not set size_.
  void reserve_(std::uint32_t n) {
    if (n > capacity_()) {
      delete[] heap_;
      heap_ = new Value[n];
      heap_cap_ = n;
    }
    if (n > kMaskBits) {
      if (flags_ == nullptr || flags_cap_ < n) {
        delete[] flags_;
        flags_ = new std::uint8_t[n]();
        flags_cap_ = n;
      }
    } else if (flags_ != nullptr) {
      delete[] flags_;  // back to the inline mask
      flags_ = nullptr;
      flags_cap_ = 0;
    }
  }

  void release_() noexcept {
    delete[] heap_;
    delete[] flags_;
    heap_ = nullptr;
    flags_ = nullptr;
    heap_cap_ = 0;
    flags_cap_ = 0;
    size_ = 0;
    mask_ = 0;
  }

  void copy_from_(const ArgSlots& other) {
    reserve_(other.size_);
    size_ = other.size_;
    mask_ = other.mask_;
    const Value* src = other.values_();
    Value* dst = values_();
    for (std::uint32_t i = 0; i < size_; ++i) dst[i] = src[i];
    if (other.flags_ != nullptr) {
      for (std::uint32_t i = 0; i < size_; ++i) flags_[i] = other.flags_[i];
    }
  }

  void move_from_(ArgSlots&& other) noexcept {
    size_ = other.size_;
    mask_ = other.mask_;
    heap_ = other.heap_;
    heap_cap_ = other.heap_cap_;
    flags_ = other.flags_;
    flags_cap_ = other.flags_cap_;
    if (heap_ == nullptr) {
      const std::uint32_t n = size_ < kInlineSlots ? size_ : kInlineSlots;
      for (std::uint32_t i = 0; i < n; ++i) {
        inline_[i] = std::move(other.inline_[i]);
      }
    }
    other.heap_ = nullptr;
    other.flags_ = nullptr;
    other.heap_cap_ = 0;
    other.flags_cap_ = 0;
    other.size_ = 0;
    other.mask_ = 0;
  }

  Value inline_[kInlineSlots];
  Value* heap_ = nullptr;        // value array when size_ > kInlineSlots
  std::uint8_t* flags_ = nullptr;  // fill flags when size_ > kMaskBits
  std::uint32_t heap_cap_ = 0;
  std::uint32_t flags_cap_ = 0;
  std::uint32_t size_ = 0;
  std::uint64_t mask_ = 0;       // fill flags when size_ <= kMaskBits
};

struct Closure {
  ClosureId id;
  TaskId task = kInvalidTask;
  ContRef cont;                 // where to send this closure's result
  ArgSlots args;                // argument slots + per-slot fill flags
  std::uint32_t missing = 0;    // slots still empty; 0 == ready
  std::uint32_t depth = 0;      // spawn-tree depth, for stats and cost models
  std::uint32_t wait_slot = 0;  // WaitingTable bucket index; maintained by
                                // the table, meaningless elsewhere, never
                                // encoded

  /// wait_slot sentinel: a waiting closure created in pooled mode that has
  /// not (yet) been inserted into the WaitingTable.  Local sends reach it
  /// through the ContRef pool-pointer hint; the owner registers it for real
  /// before any path that needs id-addressability (migration, export,
  /// hint-less sends).
  static constexpr std::uint32_t kNoWaitSlot = 0xFFFFFFFFu;

  /// Wire slot-count bound: anything larger is a hostile or corrupt payload.
  static constexpr std::uint32_t kMaxWireSlots = 1u << 20;
  /// Fixed header size, derived from the id/cont encoders so layout changes
  /// cannot silently skew the cost models: id + task u32 + cont + depth u32
  /// + nargs u32 + missing u32.
  static constexpr std::size_t kHeaderWireBytes =
      ClosureId::kWireBytes + 4 + ContRef::kWireBytes + 4 + 4 + 4;

  bool ready() const noexcept { return missing == 0; }

  /// Fill a slot.  Returns false (and changes nothing) if the slot was
  /// already filled — this makes duplicate argument sends idempotent, which
  /// the fault-tolerance redo machinery relies on.
  bool fill(std::uint16_t slot, Value&& value) {
    if (!args.fill(slot, std::move(value))) return false;
    --missing;
    return true;
  }

  /// Invalidate for pool reuse.  Only the id must be cleared here: a stale
  /// valid id would defeat lazy re-materialization on the next life.  Every
  /// other field — task, cont, args, missing, depth — is overwritten by
  /// whichever acquire path revives the closure (spawn, create_waiting,
  /// adopt), and args clears its old values itself on reset/assign/move.
  void recycle() { id = ClosureId{}; }

  /// Wire encoding: everything needed to execute the closure elsewhere
  /// (steals, migration, and the steal ledger's redo snapshots).
  void encode(Writer& w) const {
    id.encode(w);
    w.u32(task);
    cont.encode(w);
    w.u32(depth);
    w.u32(args.size());
    w.u32(missing);
    for (std::uint32_t i = 0; i < args.size(); ++i) {
      w.boolean(args.filled(i));
      args[i].encode(w);
    }
  }

  /// Decode.  On truncated, absurd, or internally inconsistent payloads the
  /// reader is failed (r.ok() == false) so steal/migrate callers can reject
  /// the closure explicitly — a partially-filled result must never be
  /// installed.
  static Closure decode(Reader& r) {
    Closure c;
    c.id = ClosureId::decode(r);
    c.task = r.u32();
    c.cont = ContRef::decode(r);
    c.depth = r.u32();
    const std::uint32_t n = r.u32();
    c.missing = r.u32();
    if (!r.ok()) return c;
    // Structural sanity before any allocation: a slot encodes to at least
    // 2 bytes (fill flag + value kind), so a count the buffer cannot hold is
    // hostile; an invalid id/task or missing > nargs cannot come from
    // encode().
    if (n > kMaxWireSlots || c.missing > n || r.remaining() < 2 * n ||
        !c.id.valid() || c.task == kInvalidTask) {
      r.fail();
      return c;
    }
    c.args.reset(n);
    std::uint32_t unfilled = 0;
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      const bool f = r.boolean();
      if (!f) ++unfilled;
      c.args.install(i, Value::decode(r), f);
    }
    if (r.ok() && unfilled != c.missing) {
      r.fail();  // fill flags disagree with the missing-count
    }
    return c;
  }

  /// Exact wire size, derived from the same constants encode() uses.
  std::size_t byte_size() const noexcept {
    std::size_t sz = kHeaderWireBytes;
    for (const Value& v : args) sz += 1 + v.byte_size();
    return sz;
  }
};

}  // namespace phish
