#include "core/jobq.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace phish {

namespace {
// Weights are configured by operators; clamp so a zero/negative weight
// degrades to "almost never scheduled" instead of dividing by zero.
double effective_weight(double w) { return w > 1e-9 ? w : 1e-9; }
}  // namespace

PhishJobQ::PhishJobQ(net::RpcNode& rpc, JobAssignPolicy policy)
    : rpc_(rpc), policy_(policy) {}

void PhishJobQ::start() {
  rpc_.serve(proto::kRpcSubmitJob, [this](net::NodeId, const Bytes& args) {
    auto spec = JobSpec::decode(args);
    Writer w;
    if (!spec) {
      w.u64(0);  // rejected
      return w.take();
    }
    w.u64(submit(std::move(*spec)));
    return w.take();
  });
  rpc_.serve(proto::kRpcRequestJob, [this](net::NodeId src, const Bytes&) {
    JobAssignment reply;
    reply.job = request(src);
    return reply.encode();
  });
  rpc_.serve(proto::kRpcJobDone, [this](net::NodeId, const Bytes& args) {
    Reader r(args);
    const std::uint64_t job_id = r.u64();
    Writer w;
    w.boolean(r.done() && complete(job_id));
    return w.take();
  });
  rpc_.serve(proto::kRpcReleaseJob, [this](net::NodeId src, const Bytes&) {
    Writer w;
    w.boolean(release(src));
    return w.take();
  });
}

void PhishJobQ::configure_tenant(const std::string& tenant,
                                 TenantConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  tenants_[tenant].config = config;
}

std::uint64_t PhishJobQ::submit(JobSpec spec) {
  std::vector<PreemptRequest> evictions;
  std::function<void(const PreemptRequest&)> preempt;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (spec.job_id == 0) spec.job_id = next_job_id_++;
    next_job_id_ = std::max(next_job_id_, spec.job_id + 1);
    if (spec.tenant.empty()) spec.tenant = kDefaultTenant;
    tenants_.try_emplace(spec.tenant);  // implicit default tenant config
    pool_.push_back(PooledJob{std::move(spec), 0});
    ++stats_.submitted;
    id = pool_.back().spec.job_id;
    if (policy_ == JobAssignPolicy::kFairShare && preempt_fn_) {
      evictions = plan_preemption_locked(pool_.back());
      stats_.preemptions += evictions.size();
      preempt = preempt_fn_;
    }
  }
  for (const PreemptRequest& e : evictions) preempt(e);
  return id;
}

std::optional<JobSpec> PhishJobQ::request(net::NodeId who) {
  std::function<void(std::uint64_t, net::NodeId)> notify;
  std::optional<JobSpec> assigned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    // One worker per workstation: a new request from a workstation we still
    // count as busy means its previous worker is gone (the release datagram
    // may still be in flight); settle the ledger first.
    release_locked(who);
    if (pool_.empty()) {
      ++stats_.empty_replies;
      return std::nullopt;
    }
    std::optional<std::size_t> index;
    switch (policy_) {
      case JobAssignPolicy::kRoundRobin:
        // Non-preemptive round-robin: advance a cursor through the pool.
        if (rr_index_ >= pool_.size()) rr_index_ = 0;
        index = rr_index_;
        rr_index_ = (rr_index_ + 1) % pool_.size();
        break;
      case JobAssignPolicy::kFirstJob:
        index = 0;
        break;
      case JobAssignPolicy::kLeastServed: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < pool_.size(); ++i) {
          if (pool_[i].assignments < pool_[best].assignments) best = i;
        }
        index = best;
        break;
      }
      case JobAssignPolicy::kFairShare:
        index = pick_fair_share_locked();
        break;
    }
    if (!index) {  // non-empty pool but every tenant at quota
      ++stats_.empty_replies;
      return std::nullopt;
    }
    PooledJob& job = pool_[*index];
    ++job.assignments;
    ++stats_.assignments;
    ++assignments_by_job_[job.spec.job_id];
    grants_[who] = job.spec.job_id;
    ++held_by_job_[job.spec.job_id];
    assigned = job.spec;
    notify = on_assign_;
  }
  if (notify && assigned) notify(assigned->job_id, who);
  return assigned;
}

bool PhishJobQ::release(net::NodeId who) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (grants_.find(who) == grants_.end()) return false;
  release_locked(who);
  return true;
}

void PhishJobQ::release_locked(net::NodeId who) {
  auto it = grants_.find(who);
  if (it == grants_.end()) return;
  auto held = held_by_job_.find(it->second);
  if (held != held_by_job_.end() && held->second > 0) {
    if (--held->second == 0) held_by_job_.erase(held);
  }
  grants_.erase(it);
  ++stats_.releases;
}

bool PhishJobQ::complete(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(pool_.begin(), pool_.end(), [&](const PooledJob& j) {
    return j.spec.job_id == job_id;
  });
  if (it == pool_.end()) return false;
  const std::size_t index = static_cast<std::size_t>(it - pool_.begin());
  pool_.erase(it);
  // Keep the round-robin cursor pointing at the same *job* it pointed at
  // before the erase: removing an earlier entry shifts the pool left under
  // the cursor, and without the decrement the next request would skip one
  // job in rotation order.
  if (index < rr_index_) --rr_index_;
  if (rr_index_ >= pool_.size()) rr_index_ = 0;
  // The job's workstation grants die with it (managers will also release,
  // which becomes a harmless no-op).
  for (auto g = grants_.begin(); g != grants_.end();) {
    g = g->second == job_id ? grants_.erase(g) : std::next(g);
  }
  held_by_job_.erase(job_id);
  ++stats_.completed;
  return true;
}

std::optional<std::size_t> PhishJobQ::pick_fair_share_locked() {
  for (int prio = kPriorityClasses - 1; prio >= 0; --prio) {
    // Tenant with the smallest held/weight ratio among those with a job in
    // this class and headroom under their workstation quota.  Ties resolve
    // lexicographically: the held counts separate candidates after the very
    // first grant, so the tie-break only seeds the rotation.
    const std::string* best_tenant = nullptr;
    double best_ratio = 0;
    for (const PooledJob& job : pool_) {
      if (job.spec.priority != prio) continue;
      const std::string& t = job.spec.tenant;
      if (best_tenant && *best_tenant == t) continue;
      const auto cfg = tenants_.find(t);
      const TenantConfig& config =
          cfg != tenants_.end() ? cfg->second.config : TenantConfig{};
      const std::uint64_t held = tenant_held_locked(t);
      if (held >= config.max_workstations) continue;
      const double ratio =
          static_cast<double>(held) / effective_weight(config.weight);
      if (!best_tenant || ratio < best_ratio ||
          (ratio == best_ratio && t < *best_tenant)) {
        best_tenant = &job.spec.tenant;
        best_ratio = ratio;
      }
    }
    if (!best_tenant) continue;
    // Within the tenant: spread workstations evenly — the job currently
    // holding the fewest, ties to the least lifetime-served, then oldest.
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      const PooledJob& job = pool_[i];
      if (job.spec.priority != prio || job.spec.tenant != *best_tenant) {
        continue;
      }
      if (!best) {
        best = i;
        continue;
      }
      const auto held_of = [this](const PooledJob& j) {
        const auto it = held_by_job_.find(j.spec.job_id);
        return it == held_by_job_.end() ? std::uint64_t{0} : it->second;
      };
      const PooledJob& incumbent = pool_[*best];
      if (std::make_pair(held_of(job), job.assignments) <
          std::make_pair(held_of(incumbent), incumbent.assignments)) {
        best = i;
      }
    }
    return best;
  }
  return std::nullopt;
}

std::vector<PreemptRequest> PhishJobQ::plan_preemption_locked(
    const PooledJob& job) {
  // Victim order: lowest priority class first; within a class, the tenant
  // most over its fair share; within the tenant, the job holding the most
  // workstations; then the smallest workstation id (determinism).
  struct Victim {
    std::uint8_t priority;
    double over_share;
    std::uint64_t held;
    net::NodeId workstation;
    std::uint64_t job_id;
  };
  std::vector<Victim> victims;
  for (const auto& [workstation, victim_job] : grants_) {
    const std::uint8_t prio = job_priority_locked(victim_job);
    if (prio >= job.spec.priority) continue;
    const auto owner = std::find_if(
        pool_.begin(), pool_.end(),
        [&](const PooledJob& j) { return j.spec.job_id == victim_job; });
    if (owner == pool_.end()) continue;
    const auto held = held_by_job_.find(victim_job);
    victims.push_back(Victim{
        prio,
        static_cast<double>(tenant_held_locked(owner->spec.tenant)) /
            effective_weight(tenant_weight_locked(owner->spec.tenant)),
        held == held_by_job_.end() ? 0 : held->second, workstation,
        victim_job});
  }
  std::sort(victims.begin(), victims.end(), [](const Victim& a,
                                               const Victim& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.over_share != b.over_share) return a.over_share > b.over_share;
    if (a.held != b.held) return a.held > b.held;
    return a.workstation < b.workstation;
  });
  std::vector<PreemptRequest> plan;
  for (const Victim& v : victims) {
    if (plan.size() >= preempt_batch_) break;
    plan.push_back(PreemptRequest{v.workstation, v.job_id, job.spec.job_id});
  }
  return plan;
}

std::uint64_t PhishJobQ::tenant_held_locked(const std::string& tenant) const {
  std::uint64_t held = 0;
  for (const PooledJob& job : pool_) {
    if (job.spec.tenant != tenant) continue;
    const auto it = held_by_job_.find(job.spec.job_id);
    if (it != held_by_job_.end()) held += it->second;
  }
  return held;
}

std::uint8_t PhishJobQ::job_priority_locked(std::uint64_t job_id) const {
  for (const PooledJob& job : pool_) {
    if (job.spec.job_id == job_id) return job.spec.priority;
  }
  return kPriorityNormal;
}

double PhishJobQ::tenant_weight_locked(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.config.weight : 1.0;
}

std::size_t PhishJobQ::pool_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_.size();
}

JobQStats PhishJobQ::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::map<std::uint64_t, std::uint64_t> PhishJobQ::assignments_by_job() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return assignments_by_job_;
}

std::map<std::uint64_t, std::uint64_t> PhishJobQ::held_by_job() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return held_by_job_;
}

std::map<std::string, std::uint64_t> PhishJobQ::held_by_tenant() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> held;
  for (const PooledJob& job : pool_) {
    const auto it = held_by_job_.find(job.spec.job_id);
    if (it != held_by_job_.end()) held[job.spec.tenant] += it->second;
  }
  return held;
}

void PhishJobQ::set_on_assign(
    std::function<void(std::uint64_t, net::NodeId)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_assign_ = std::move(fn);
}

void PhishJobQ::set_preempt_fn(
    std::function<void(const PreemptRequest&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  preempt_fn_ = std::move(fn);
}

}  // namespace phish
