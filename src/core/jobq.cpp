#include "core/jobq.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace phish {

PhishJobQ::PhishJobQ(net::RpcNode& rpc, JobAssignPolicy policy)
    : rpc_(rpc), policy_(policy) {}

void PhishJobQ::start() {
  rpc_.serve(proto::kRpcSubmitJob, [this](net::NodeId, const Bytes& args) {
    auto spec = JobSpec::decode(args);
    Writer w;
    if (!spec) {
      w.u64(0);  // rejected
      return w.take();
    }
    w.u64(submit(std::move(*spec)));
    return w.take();
  });
  rpc_.serve(proto::kRpcRequestJob, [this](net::NodeId src, const Bytes&) {
    JobAssignment reply;
    reply.job = request(src);
    return reply.encode();
  });
  rpc_.serve(proto::kRpcJobDone, [this](net::NodeId, const Bytes& args) {
    Reader r(args);
    const std::uint64_t job_id = r.u64();
    Writer w;
    w.boolean(r.done() && complete(job_id));
    return w.take();
  });
}

std::uint64_t PhishJobQ::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec.job_id == 0) spec.job_id = next_job_id_++;
  next_job_id_ = std::max(next_job_id_, spec.job_id + 1);
  pool_.push_back(PooledJob{std::move(spec), 0});
  ++stats_.submitted;
  return pool_.back().spec.job_id;
}

std::optional<JobSpec> PhishJobQ::request(net::NodeId who) {
  std::function<void(std::uint64_t, net::NodeId)> notify;
  std::optional<JobSpec> assigned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    if (pool_.empty()) {
      ++stats_.empty_replies;
      return std::nullopt;
    }
    std::size_t index = 0;
    switch (policy_) {
      case JobAssignPolicy::kRoundRobin:
        // Non-preemptive round-robin: advance a cursor through the pool.
        if (rr_index_ >= pool_.size()) rr_index_ = 0;
        index = rr_index_;
        rr_index_ = (rr_index_ + 1) % pool_.size();
        break;
      case JobAssignPolicy::kFirstJob:
        index = 0;
        break;
      case JobAssignPolicy::kLeastServed: {
        index = 0;
        for (std::size_t i = 1; i < pool_.size(); ++i) {
          if (pool_[i].assignments < pool_[index].assignments) index = i;
        }
        break;
      }
    }
    ++pool_[index].assignments;
    ++stats_.assignments;
    ++assignments_by_job_[pool_[index].spec.job_id];
    assigned = pool_[index].spec;
    notify = on_assign_;
  }
  if (notify && assigned) notify(assigned->job_id, who);
  return assigned;
}

bool PhishJobQ::complete(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(pool_.begin(), pool_.end(), [&](const PooledJob& j) {
    return j.spec.job_id == job_id;
  });
  if (it == pool_.end()) return false;
  const std::size_t index = static_cast<std::size_t>(it - pool_.begin());
  pool_.erase(it);
  // Keep the round-robin cursor consistent with the shrunken pool.
  if (index < rr_index_ && rr_index_ > 0) --rr_index_;
  if (!pool_.empty()) rr_index_ %= pool_.size();
  ++stats_.completed;
  return true;
}

std::size_t PhishJobQ::pool_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_.size();
}

JobQStats PhishJobQ::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::map<std::uint64_t, std::uint64_t> PhishJobQ::assignments_by_job() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return assignments_by_job_;
}

void PhishJobQ::set_on_assign(
    std::function<void(std::uint64_t, net::NodeId)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_assign_ = std::move(fn);
}

}  // namespace phish
