// The ready-task list of Figure 1.
//
// The owning worker works at the HEAD in LIFO order: it pops the head to
// execute and pushes newly spawned tasks at the head.  Thieves steal from the
// TAIL in FIFO order — the task nearest the base of the spawn tree, likely to
// be large.  The paper argues (and our A1/A2 ablations demonstrate) that this
// pairing is what preserves memory and communication locality.
//
// Both disciplines are configurable so the ablation benches can invert them.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "core/closure.hpp"

namespace phish {

/// Which end the owner executes from.
enum class ExecOrder : std::uint8_t {
  kLifo,  // paper's choice: depth-first, small working set
  kFifo,  // ablation: breadth-first, working set explodes
};

/// Which end thieves steal from.
enum class StealOrder : std::uint8_t {
  kFifo,  // paper's choice: tail == oldest == near the base of the tree
  kLifo,  // ablation: steal the newest (fine-grained) task
};

class ReadyDeque {
 public:
  ReadyDeque() = default;
  ReadyDeque(ExecOrder exec_order, StealOrder steal_order)
      : exec_order_(exec_order), steal_order_(steal_order) {}

  /// Spawn/enable: newly ready closures go at the head (paper's discipline).
  void push(Closure closure) { tasks_.push_front(std::move(closure)); }

  /// The owner takes its next task (head under LIFO).
  std::optional<Closure> pop_for_execution() {
    if (tasks_.empty()) return std::nullopt;
    Closure c = exec_order_ == ExecOrder::kLifo ? take_front() : take_back();
    return c;
  }

  /// A thief takes a task (tail under FIFO).
  std::optional<Closure> pop_for_steal() {
    if (tasks_.empty()) return std::nullopt;
    Closure c = steal_order_ == StealOrder::kFifo ? take_back() : take_front();
    return c;
  }

  bool empty() const noexcept { return tasks_.empty(); }
  std::size_t size() const noexcept { return tasks_.size(); }

  ExecOrder exec_order() const noexcept { return exec_order_; }
  StealOrder steal_order() const noexcept { return steal_order_; }

  /// Drain everything (task migration when the owner reclaims the machine).
  std::deque<Closure> drain() { return std::exchange(tasks_, {}); }

  /// Remove a queued closure by id (fault recovery aborts orphaned steals).
  bool remove(const ClosureId& id);

  /// Inspect without removing (tests and stats).
  const std::deque<Closure>& tasks() const noexcept { return tasks_; }

 private:
  Closure take_front() {
    Closure c = std::move(tasks_.front());
    tasks_.pop_front();
    return c;
  }
  Closure take_back() {
    Closure c = std::move(tasks_.back());
    tasks_.pop_back();
    return c;
  }

  std::deque<Closure> tasks_;
  ExecOrder exec_order_ = ExecOrder::kLifo;
  StealOrder steal_order_ = StealOrder::kFifo;
};

}  // namespace phish
