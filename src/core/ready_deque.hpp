// The ready-task list of Figure 1.
//
// The owning worker works at the HEAD in LIFO order: it pops the head to
// execute and pushes newly spawned tasks at the head.  Thieves steal from the
// TAIL in FIFO order — the task nearest the base of the spawn tree, likely to
// be large.  The paper argues (and our A1/A2 ablations demonstrate) that this
// pairing is what preserves memory and communication locality.
//
// Both disciplines are configurable so the ablation benches can invert them.
//
// Storage is a power-of-two ring of Closure* — the closures themselves live
// in the worker's ClosurePool — so push/pop move one pointer, not a closure.
// Thieves can take a batch (steal-half) in one call; with max = 1 the
// behavior is exactly the classic steal-one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/closure.hpp"

namespace phish {

/// Which end the owner executes from.
enum class ExecOrder : std::uint8_t {
  kLifo,  // paper's choice: depth-first, small working set
  kFifo,  // ablation: breadth-first, working set explodes
};

/// Which end thieves steal from.
enum class StealOrder : std::uint8_t {
  kFifo,  // paper's choice: tail == oldest == near the base of the tree
  kLifo,  // ablation: steal the newest (fine-grained) task
};

class ReadyDeque {
 public:
  ReadyDeque() : buf_(kInitialCapacity) {}
  ReadyDeque(ExecOrder exec_order, StealOrder steal_order)
      : buf_(kInitialCapacity),
        exec_order_(exec_order),
        steal_order_(steal_order) {}

  /// Spawn/enable: newly ready closures go at the head (paper's discipline).
  void push(Closure* closure) {
    if (count_ == buf_.size()) grow_();
    head_ = (head_ - 1) & mask_();
    buf_[head_] = closure;
    ++count_;
  }

  /// The owner takes its next task (head under LIFO); nullptr when empty.
  Closure* pop_for_execution() noexcept {
    if (count_ == 0) return nullptr;
    return exec_order_ == ExecOrder::kLifo ? take_front_() : take_back_();
  }

  /// A thief takes a task (tail under FIFO); nullptr when empty.
  Closure* pop_for_steal() noexcept {
    if (count_ == 0) return nullptr;
    return steal_order_ == StealOrder::kFifo ? take_back_() : take_front_();
  }

  /// Batched steal: up to `max` tasks from the steal end, capped at half of
  /// what is queued (steal-half), but always at least one when non-empty.
  /// Returns the number written to `out`, in the order a sequence of
  /// pop_for_steal() calls would have produced them.
  std::size_t pop_for_steal_batch(Closure** out, std::size_t max) noexcept {
    if (count_ == 0 || max == 0) return 0;
    std::size_t take = count_ / 2;
    if (take < 1) take = 1;
    if (take > max) take = max;
    for (std::size_t i = 0; i < take; ++i) out[i] = pop_for_steal();
    return take;
  }

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  ExecOrder exec_order() const noexcept { return exec_order_; }
  StealOrder steal_order() const noexcept { return steal_order_; }

  /// Drain everything, head first (task migration when the owner reclaims
  /// the machine).
  std::vector<Closure*> drain() {
    std::vector<Closure*> out;
    out.reserve(count_);
    while (Closure* c = take_front_or_null_()) out.push_back(c);
    return out;
  }

  /// Remove a queued closure by id (fault recovery aborts orphaned steals).
  /// Returns the removed closure so the caller can release it to its pool.
  Closure* remove(const ClosureId& id) noexcept;

  /// Inspect without removing: element `i`, head-relative (0 == next LIFO
  /// execution victim).  Used by checkpoint export and tests.
  const Closure* at(std::size_t i) const noexcept {
    return buf_[(head_ + i) & mask_()];
  }
  Closure* at(std::size_t i) noexcept { return buf_[(head_ + i) & mask_()]; }

 private:
  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  std::size_t mask_() const noexcept { return buf_.size() - 1; }

  Closure* take_front_() noexcept {
    Closure* c = buf_[head_];
    head_ = (head_ + 1) & mask_();
    --count_;
    return c;
  }
  Closure* take_back_() noexcept {
    --count_;
    return buf_[(head_ + count_) & mask_()];
  }
  Closure* take_front_or_null_() noexcept {
    return count_ == 0 ? nullptr : take_front_();
  }

  void grow_();

  std::vector<Closure*> buf_;  // power-of-two ring
  std::size_t head_ = 0;       // index of the head element (when count_ > 0)
  std::size_t count_ = 0;
  ExecOrder exec_order_ = ExecOrder::kLifo;
  StealOrder steal_order_ = StealOrder::kFifo;
};

}  // namespace phish
