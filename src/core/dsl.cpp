#include "core/dsl.hpp"

#include <memory>
#include <stdexcept>

namespace phish::dsl {

TaskId register_expand_reduce(TaskRegistry& registry, const std::string& name,
                              ExpandFn expand, ReduceFn reduce) {
  if (!expand || !reduce) {
    throw std::invalid_argument("register_expand_reduce: " + name +
                                ": expand and reduce are required");
  }
  auto shared_reduce = std::make_shared<ReduceFn>(std::move(reduce));
  const TaskId reduce_id = registry.add(
      name + ".reduce",
      [shared_reduce](Context& cx, Closure& c) {
        // The public ReduceFn works on a plain vector; move the slots out.
        std::vector<Value> results = c.args.take_vector();
        cx.send(c.cont, (*shared_reduce)(cx, results));
      });

  auto shared_expand = std::make_shared<ExpandFn>(std::move(expand));
  const TaskId expand_id = registry.add(
      name,
      [shared_expand, reduce_id, name](Context& cx, Closure& c) {
        const std::vector<Value> args(c.args.begin(), c.args.end());
        Expansion e = (*shared_expand)(cx, args);
        if (e.leaf) {
          cx.send(c.cont, std::move(*e.leaf));
          return;
        }
        if (e.children.empty()) {
          throw std::logic_error("expand_reduce task '" + name +
                                 "': expansion produced neither a leaf nor "
                                 "children");
        }
        if (e.children.size() > 0xffff) {
          throw std::length_error("expand_reduce task '" + name +
                                  "': too many children (" +
                                  std::to_string(e.children.size()) + ")");
        }
        const ClosureId join = cx.make_join(
            reduce_id, static_cast<std::uint16_t>(e.children.size()), c.cont);
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          cx.spawn(c.task, std::move(e.children[i]),
                   cx.slot(join, static_cast<std::uint16_t>(i)));
        }
      });
  return expand_id;
}

}  // namespace phish::dsl
