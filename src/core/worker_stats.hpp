// Per-participant scheduling statistics.
//
// These are exactly the quantities the paper's Table 2 reports for pfold
// ("Tasks executed", "Max tasks in use", "Tasks stolen", "Synchronizations",
// "Non-local synchs", "Messages sent"), plus supporting counters for the
// ablation benches.
#pragma once

#include <cstdint>
#include <vector>

#include "serial/buffer.hpp"

namespace phish {

// Field order is NOT wire order (encode/decode list fields by name): the
// first eight members are the ones the task hot path bumps on every
// closure cycle, packed into a single cache line (alignas keeps the line
// boundary honest wherever the struct is embedded).  The cold steal /
// migration / error counters follow.
struct alignas(64) WorkerStats {
  // -- hot line: touched every spawn/execute/send --
  std::uint64_t tasks_executed = 0;
  std::uint64_t executed_depth_total = 0;  // depth sums: see note below
  std::uint64_t synchronizations = 0;   // argument sends initiated here
  std::uint64_t tasks_in_use = 0;       // current closures allocated
  std::uint64_t closures_created = 0;
  std::uint64_t tasks_spawned = 0;      // ready spawns (subset of created)
  std::uint64_t max_tasks_in_use = 0;   // peak closures allocated at once
  std::uint64_t non_local_synchs = 0;   // sends whose target lived elsewhere

  // -- cold counters --
  std::uint64_t tasks_stolen_from_me = 0;  // counted at the victim
  std::uint64_t tasks_stolen_by_me = 0; // counted at the thief
  std::uint64_t steal_requests_sent = 0;
  std::uint64_t steal_requests_received = 0;
  std::uint64_t failed_steals = 0;      // my requests that found nothing
  std::uint64_t args_duplicate = 0;     // idempotent re-sends dropped
  std::uint64_t args_unknown_closure = 0;  // dead-lettered deliveries
  std::uint64_t args_forwarded = 0;     // rerouted via a forwarding stub
  std::uint64_t tasks_migrated_out = 0; // owner-return migration
  std::uint64_t tasks_redone = 0;       // fault-recovery re-enqueues
  // Migration-durability re-enqueues: cargo redelivered from the
  // Clearinghouse migration ledger after its holder died, plus migrated
  // steal-ledger snapshots redone because their thief was already dead.
  std::uint64_t tasks_migration_redone = 0;
  // Spawn-tree depth sums, for the communication-locality evidence: FIFO
  // steals should take tasks near the BASE of the tree (small depth), i.e.
  // avg stolen depth << avg executed depth.  executed_depth_total lives on
  // the hot line above.
  std::uint64_t stolen_depth_total = 0;  // at the victim

  void note_alloc() {
    ++closures_created;
    ++tasks_in_use;
    if (tasks_in_use > max_tasks_in_use) max_tasks_in_use = tasks_in_use;
  }
  void note_free() {
    if (tasks_in_use > 0) --tasks_in_use;
  }

  /// Aggregate across participants: sums everything except max_tasks_in_use,
  /// which takes the per-participant maximum (as the paper reports it).
  void merge(const WorkerStats& other) {
    tasks_executed += other.tasks_executed;
    if (other.max_tasks_in_use > max_tasks_in_use) {
      max_tasks_in_use = other.max_tasks_in_use;
    }
    tasks_stolen_from_me += other.tasks_stolen_from_me;
    synchronizations += other.synchronizations;
    non_local_synchs += other.non_local_synchs;
    tasks_in_use += other.tasks_in_use;
    closures_created += other.closures_created;
    tasks_spawned += other.tasks_spawned;
    tasks_stolen_by_me += other.tasks_stolen_by_me;
    steal_requests_sent += other.steal_requests_sent;
    steal_requests_received += other.steal_requests_received;
    failed_steals += other.failed_steals;
    args_duplicate += other.args_duplicate;
    args_unknown_closure += other.args_unknown_closure;
    args_forwarded += other.args_forwarded;
    tasks_migrated_out += other.tasks_migrated_out;
    tasks_redone += other.tasks_redone;
    tasks_migration_redone += other.tasks_migration_redone;
    executed_depth_total += other.executed_depth_total;
    stolen_depth_total += other.stolen_depth_total;
  }

  double avg_executed_depth() const {
    return tasks_executed
               ? static_cast<double>(executed_depth_total) /
                     static_cast<double>(tasks_executed)
               : 0.0;
  }
  double avg_stolen_depth() const {
    return tasks_stolen_from_me
               ? static_cast<double>(stolen_depth_total) /
                     static_cast<double>(tasks_stolen_from_me)
               : 0.0;
  }

  void encode(Writer& w) const {
    w.u64(tasks_executed);
    w.u64(max_tasks_in_use);
    w.u64(tasks_stolen_from_me);
    w.u64(synchronizations);
    w.u64(non_local_synchs);
    w.u64(tasks_in_use);
    w.u64(closures_created);
    w.u64(tasks_spawned);
    w.u64(tasks_stolen_by_me);
    w.u64(steal_requests_sent);
    w.u64(steal_requests_received);
    w.u64(failed_steals);
    w.u64(args_duplicate);
    w.u64(args_unknown_closure);
    w.u64(args_forwarded);
    w.u64(tasks_migrated_out);
    w.u64(tasks_redone);
    w.u64(tasks_migration_redone);
    w.u64(executed_depth_total);
    w.u64(stolen_depth_total);
  }
  static WorkerStats decode(Reader& r) {
    WorkerStats s;
    s.tasks_executed = r.u64();
    s.max_tasks_in_use = r.u64();
    s.tasks_stolen_from_me = r.u64();
    s.synchronizations = r.u64();
    s.non_local_synchs = r.u64();
    s.tasks_in_use = r.u64();
    s.closures_created = r.u64();
    s.tasks_spawned = r.u64();
    s.tasks_stolen_by_me = r.u64();
    s.steal_requests_sent = r.u64();
    s.steal_requests_received = r.u64();
    s.failed_steals = r.u64();
    s.args_duplicate = r.u64();
    s.args_unknown_closure = r.u64();
    s.args_forwarded = r.u64();
    s.tasks_migrated_out = r.u64();
    s.tasks_redone = r.u64();
    s.tasks_migration_redone = r.u64();
    s.executed_depth_total = r.u64();
    s.stolen_depth_total = r.u64();
    return s;
  }
};

/// The one aggregation path every runtime reports through: per-participant
/// stats plus the paper-convention merge.  Replaces the hand-rolled
/// push_back/merge loops that used to live in each runtime.
struct StatsSnapshot {
  WorkerStats aggregate;
  std::vector<WorkerStats> per_worker;

  void add(const WorkerStats& s) {
    per_worker.push_back(s);
    aggregate.merge(s);
  }
};

/// Collect a snapshot from any range of participants; `get` maps an element
/// to its WorkerStats (and may lock around the read).
template <typename Range, typename GetStats>
StatsSnapshot collect_stats(const Range& participants, GetStats get) {
  StatsSnapshot snap;
  for (const auto& p : participants) snap.add(get(p));
  return snap;
}

}  // namespace phish
