#include "core/worker_core.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/log.hpp"

namespace phish {

WorkerCore::WorkerCore(net::NodeId me, const TaskRegistry& registry,
                       Hooks hooks, ExecOrder exec_order,
                       StealOrder steal_order)
    : me_(me),
      registry_(registry),
      hooks_(std::move(hooks)),
      deque_(exec_order, steal_order) {
  if (!hooks_.send_remote) {
    throw std::invalid_argument("WorkerCore: send_remote hook is required");
  }
}

void WorkerCore::spawn(TaskId task, std::vector<Value> args, ContRef cont,
                       std::uint32_t depth) {
  Closure c;
  c.id = next_id();
  c.task = task;
  c.cont = cont;
  c.filled.assign(args.size(), true);
  c.args = std::move(args);
  c.missing = 0;
  c.depth = depth;
  stats_.note_alloc();
  ++stats_.tasks_spawned;
  const ClosureId id = c.id;
  deque_.push(std::move(c));
  if (tracing()) {
    trace_instant(obs::EventType::kSpawn, id, deque_.size());
  }
}

ClosureId WorkerCore::create_waiting(TaskId task, std::uint16_t nslots,
                                     ContRef cont, std::uint32_t depth) {
  Closure c;
  c.id = next_id();
  c.task = task;
  c.cont = cont;
  c.args.resize(nslots);
  c.filled.assign(nslots, false);
  c.missing = nslots;
  c.depth = depth;
  stats_.note_alloc();
  const ClosureId id = c.id;
  if (nslots == 0) {
    // Degenerate join: ready immediately.
    deque_.push(std::move(c));
  } else {
    waiting_.emplace(id, std::move(c));
  }
  return id;
}

void WorkerCore::send_argument(const ContRef& cont, Value value) {
  ++stats_.synchronizations;
  if (tracing()) {
    trace_instant(obs::EventType::kArgSend, cont.target,
                  cont.home == me_ ? 0 : 1);
  }
  if (cont.home == me_) {
    const Deliver result = deliver_remote(cont.target, cont.slot,
                                          std::move(value));
    if (result == Deliver::kUnknown) {
      // A local send to an unknown closure is a programming error, not a
      // network artifact.
      PHISH_LOG(kError) << "local send to unknown closure "
                        << to_string(cont.target);
    }
    return;
  }
  ++stats_.non_local_synchs;
  hooks_.send_remote(cont, std::move(value));
}

std::optional<Closure> WorkerCore::pop_for_execution() {
  return deque_.pop_for_execution();
}

void WorkerCore::execute(Closure& closure) {
  const TaskDesc& desc = registry_.get(closure.task);
  stolen_in_.erase(closure.id);  // past the point where aborting could help
  last_charge_ = 0;
  const std::uint64_t t_start =
      tracing() && trace_execute_spans_ ? trace_now() : 0;
  Context ctx(*this, closure);
  desc.fn(ctx, closure);
  ++stats_.tasks_executed;
  stats_.executed_depth_total += closure.depth;
  stats_.note_free();
  if (tracing() && trace_execute_spans_) {
    obs::TraceEvent e = obs::make_event(
        obs::EventType::kExecute, static_cast<std::uint16_t>(me_.value),
        t_start);
    e.t_end = trace_now();
    e.closure_origin = closure.id.origin.value;
    e.closure_seq = closure.id.seq;
    e.arg = deque_.size();
    trace_->emit(e);
  }
}

std::optional<Closure> WorkerCore::try_steal(net::NodeId thief) {
  ++stats_.steal_requests_received;
  std::optional<Closure> victim_task = deque_.pop_for_steal();
  if (!victim_task) return std::nullopt;
  ++stats_.tasks_stolen_from_me;
  stats_.stolen_depth_total += victim_task->depth;
  stats_.note_free();  // it leaves this worker
  // Record a redo snapshot in case the thief dies before completing it.
  steal_ledger_.emplace(victim_task->id, LedgerEntry{*victim_task, thief});
  if (tracing()) {
    trace_instant(obs::EventType::kStealServed, victim_task->id,
                  deque_.size());
  }
  return victim_task;
}

void WorkerCore::install_stolen(Closure closure) {
  ++stats_.tasks_stolen_by_me;
  stats_.note_alloc();
  // Track where this task's result is claimed, so the task can be aborted if
  // that participant dies before we run it.
  const ClosureId id = closure.id;
  stolen_in_.emplace(id, closure.cont.home);
  deque_.push(std::move(closure));
  if (tracing()) {
    trace_instant(obs::EventType::kStealSuccess, id, deque_.size());
  }
}

void WorkerCore::note_steal_request_sent() {
  ++stats_.steal_requests_sent;
  if (tracing()) {
    trace_instant(obs::EventType::kStealRequest, ClosureId{}, 0);
  }
}

void WorkerCore::note_steal_failed() {
  ++stats_.failed_steals;
  if (tracing()) {
    trace_instant(obs::EventType::kStealFail, ClosureId{}, 0);
  }
}

WorkerCore::Deliver WorkerCore::deliver_remote(const ClosureId& target,
                                               std::uint16_t slot,
                                               Value value) {
  auto it = waiting_.find(target);
  if (it == waiting_.end()) {
    ++stats_.args_unknown_closure;
    return Deliver::kUnknown;
  }
  Closure& c = it->second;
  if (!c.fill(slot, std::move(value))) {
    ++stats_.args_duplicate;
    return Deliver::kDuplicate;
  }
  if (tracing()) {
    trace_instant(obs::EventType::kArgRecv, target, slot);
  }
  if (c.ready()) {
    deque_.push(std::move(c));
    waiting_.erase(it);
    return Deliver::kBecameReady;
  }
  return Deliver::kFilled;
}

std::vector<Closure> WorkerCore::drain_for_migration() {
  std::vector<Closure> out;
  auto ready = deque_.drain();
  for (Closure& c : ready) {
    out.push_back(std::move(c));
  }
  for (auto& [id, c] : waiting_) {
    out.push_back(std::move(c));
  }
  waiting_.clear();
  stats_.tasks_migrated_out += out.size();
  for (std::size_t i = 0; i < out.size(); ++i) stats_.note_free();
  if (tracing()) {
    trace_instant(obs::EventType::kMigrateOut, ClosureId{}, out.size());
  }
  return out;
}

void WorkerCore::install_migrated(Closure closure) {
  stats_.note_alloc();
  if (tracing()) {
    trace_instant(obs::EventType::kMigrateIn, closure.id, 0);
  }
  if (closure.ready()) {
    deque_.push(std::move(closure));
  } else {
    const ClosureId id = closure.id;
    waiting_.emplace(id, std::move(closure));
  }
}

std::size_t WorkerCore::handle_participant_death(net::NodeId dead) {
  // 1. Redo: tasks the dead participant stole from us are re-enqueued from
  //    their ledger snapshots.  Slot fill-flags downstream make any work the
  //    thief completed before dying idempotent.
  std::size_t redone = 0;
  for (auto it = steal_ledger_.begin(); it != steal_ledger_.end();) {
    if (it->second.thief == dead) {
      stats_.note_alloc();
      ++stats_.tasks_redone;
      if (tracing()) {
        trace_instant(obs::EventType::kRedo, it->first, dead.value);
      }
      deque_.push(std::move(it->second.snapshot));
      it = steal_ledger_.erase(it);
      ++redone;
    } else {
      ++it;
    }
  }
  // 2. Abort orphans: tasks we stole whose results would go to closures on
  //    the dead participant.  Still-queued ones are removed; running or
  //    completed ones are harmless (their sends dead-letter).
  for (auto it = stolen_in_.begin(); it != stolen_in_.end();) {
    if (it->second == dead) {
      if (deque_.remove(it->first)) stats_.note_free();
      it = stolen_in_.erase(it);
    } else {
      ++it;
    }
  }
  return redone;
}

Bytes WorkerCore::export_state() const {
  Writer w;
  w.u32(me_.value);
  w.u64(next_seq_);
  // Ready tasks, head to tail (re-pushing in reverse order restores them).
  const auto& ready = deque_.tasks();
  w.u32(static_cast<std::uint32_t>(ready.size()));
  for (const Closure& c : ready) c.encode(w);
  w.u32(static_cast<std::uint32_t>(waiting_.size()));
  for (const auto& [id, c] : waiting_) c.encode(w);
  return w.take();
}

void WorkerCore::import_state(const Bytes& state) {
  if (!deque_.empty() || !waiting_.empty()) {
    throw std::logic_error("WorkerCore::import_state: core not fresh");
  }
  Reader r(state);
  const net::NodeId origin{r.u32()};
  if (origin != me_) {
    throw std::invalid_argument(
        "WorkerCore::import_state: state belongs to " + net::to_string(origin));
  }
  next_seq_ = r.u64();
  const std::uint32_t ready_count = r.u32();
  std::vector<Closure> ready;
  ready.reserve(ready_count);
  for (std::uint32_t i = 0; i < ready_count && r.ok(); ++i) {
    ready.push_back(Closure::decode(r));
  }
  // Encoded head-first; push back-to-front so the head ends up at the head.
  for (auto it = ready.rbegin(); it != ready.rend(); ++it) {
    stats_.note_alloc();
    deque_.push(std::move(*it));
  }
  const std::uint32_t waiting_count = r.ok() ? r.u32() : 0;
  for (std::uint32_t i = 0; i < waiting_count && r.ok(); ++i) {
    Closure c = Closure::decode(r);
    stats_.note_alloc();
    const ClosureId id = c.id;
    waiting_.emplace(id, std::move(c));
  }
  if (!r.done()) {
    throw std::invalid_argument("WorkerCore::import_state: corrupt state");
  }
}

void WorkerCore::emit_io(const std::string& text) {
  if (hooks_.emit_io) {
    hooks_.emit_io(text);
  } else {
    std::fputs((text + "\n").c_str(), stdout);
  }
}

void WorkerCore::trace_instant(obs::EventType type, const ClosureId& id,
                               std::uint64_t arg) {
  if (!tracing()) return;
  obs::TraceEvent e = obs::make_event(
      type, static_cast<std::uint16_t>(me_.value), trace_now());
  if (id.valid()) {
    e.closure_origin = id.origin.value;
    e.closure_seq = id.seq;
  }
  e.arg = arg;
  trace_->emit(e);
}

const Closure* WorkerCore::find_waiting(const ClosureId& id) const {
  auto it = waiting_.find(id);
  return it == waiting_.end() ? nullptr : &it->second;
}

}  // namespace phish
