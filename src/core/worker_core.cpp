#include "core/worker_core.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/log.hpp"

namespace phish {

WorkerCore::WorkerCore(net::NodeId me, const TaskRegistry& registry,
                       Hooks hooks, const CoreOptions& options)
    : me_(me),
      registry_(registry),
      task_entries_(registry.entries()),
      task_limit_(static_cast<std::uint32_t>(registry.size())),
      hooks_(std::move(hooks)),
      options_(options),
      pool_(options.pooled_alloc),
      deque_(options.exec_order, options.steal_order),
      fused_(options.fused_spawn && options.exec_order == ExecOrder::kLifo) {
  if (!hooks_.send_remote) {
    throw std::invalid_argument("WorkerCore: send_remote hook is required");
  }
  // The Chase–Lev deque is intrinsically LIFO-owner / FIFO-thief; ablation
  // orders keep the guarded ring.
  if (options.lockfree_deque && options.exec_order == ExecOrder::kLifo &&
      options.steal_order == StealOrder::kFifo) {
    lockfree_ = std::make_unique<ChaseLevDeque<Closure*>>();
  }
}

std::vector<Closure*> WorkerCore::drain_ready_() {
  if (!lockfree_) return deque_.drain();
  // Externally synchronized with thieves here; owner pops walk the deque
  // head (bottom) first, matching the guarded drain order.
  std::vector<Closure*> out;
  out.reserve(owner_size_);
  while (auto c = lockfree_->pop()) out.push_back(*c);
  owner_size_ = 0;
  return out;
}

Closure* WorkerCore::remove_ready_(const ClosureId& id) {
  if (!lockfree_) return deque_.remove(id);
  // Rare path (fault recovery), externally synchronized: pop everything,
  // filter, re-push in reverse so the head stays the head.
  std::vector<Closure*> kept = drain_ready_();
  Closure* removed = nullptr;
  for (Closure*& c : kept) {
    if (removed == nullptr && c->id.valid() && c->id == id) {
      removed = c;
      c = nullptr;
    }
  }
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    if (*it != nullptr) deque_push_(*it);
  }
  return removed;
}

void WorkerCore::local_send_unknown_(const ClosureId& target) {
  ++stats_.args_unknown_closure;
  // On a worker that never redid work, a local send to an unknown closure
  // is a programming error.  After a redo it is the idempotency contract
  // doing its job: the re-executed subtree sends into parents the first
  // (pre-crash) execution already fired and freed — dead-letter quietly.
  if (stats_.tasks_redone > 0) {
    PHISH_LOG(kDebug) << "dead-letter: duplicate local send to "
                      << to_string(target) << " after redo";
    return;
  }
  PHISH_LOG(kError) << "local send to unknown closure " << to_string(target);
}

std::optional<Closure> WorkerCore::try_steal(net::NodeId thief) {
  std::vector<Closure> got = try_steal_batch(thief, 1);
  if (got.empty()) return std::nullopt;
  return std::move(got.front());
}

std::vector<Closure> WorkerCore::try_steal_batch(net::NodeId thief,
                                                 std::uint32_t max_tasks) {
  ++stats_.steal_requests_received;
  std::vector<Closure> out;
  if (max_tasks == 0) return out;
  if (max_tasks > kMaxStealBatch) max_tasks = kMaxStealBatch;
  // Externally synchronized with the owner (the runtimes' contract for this
  // call), so the fused register can be demoted and the full list stolen
  // from — semantics identical to the unfused guarded deque.
  demote_next_();
  Closure* taken[kMaxStealBatch];
  std::size_t got = 0;
  if (lockfree_) {
    std::size_t want = lockfree_->size_approx() / 2;
    if (want < 1) want = 1;
    if (want > max_tasks) want = max_tasks;
    while (got < want) {
      auto c = lockfree_->steal();
      if (!c) break;
      taken[got++] = *c;
    }
  } else {
    got = deque_.pop_for_steal_batch(taken, max_tasks);
  }
  out.reserve(got);
  for (std::size_t i = 0; i < got; ++i) {
    Closure* c = taken[i];
    materialize(c);
    ++stats_.tasks_stolen_from_me;
    stats_.stolen_depth_total += c->depth;
    stats_.note_free();  // it leaves this worker
    // Record a redo snapshot in case the thief dies before completing it.
    steal_ledger_.emplace(c->id, LedgerEntry{*c, thief});
    if (tracing()) {
      trace_instant(obs::EventType::kStealServed, c->id, ready_count());
    }
    out.push_back(std::move(*c));
    pool_.release(c);
  }
  return out;
}

std::size_t WorkerCore::steal_concurrent(std::vector<Closure>& out,
                                         std::uint32_t max_tasks) {
  steal_reqs_atomic_.fetch_add(1, std::memory_order_relaxed);
  if (!lockfree_ || max_tasks == 0) return 0;
  if (max_tasks > kMaxStealBatch) max_tasks = kMaxStealBatch;
  std::size_t want = lockfree_->size_approx() / 2;  // steal-half
  if (want < 1) want = 1;
  if (want > max_tasks) want = max_tasks;
  Closure* taken[kMaxStealBatch];
  std::size_t got = 0;
  while (got < want) {
    auto c = lockfree_->steal();
    if (!c) break;
    taken[got++] = *c;
  }
  if (got == 0) return 0;
  std::uint64_t depth_total = 0;
  out.reserve(out.size() + got);
  for (std::size_t i = 0; i < got; ++i) {
    out.push_back(*taken[i]);  // by value: the slot stays in the victim pool
    depth_total += taken[i]->depth;
  }
  {
    std::lock_guard<std::mutex> lock(stash_mutex_);
    stash_.insert(stash_.end(), taken, taken + got);
  }
  stash_count_.fetch_add(got, std::memory_order_release);
  stolen_count_atomic_.fetch_add(got, std::memory_order_relaxed);
  stolen_depth_atomic_.fetch_add(depth_total, std::memory_order_relaxed);
  return got;
}

void WorkerCore::reclaim_stolen_slots() {
  if (stash_count_.load(std::memory_order_acquire) != 0) {
    std::vector<Closure*> parked;
    {
      std::lock_guard<std::mutex> lock(stash_mutex_);
      parked.swap(stash_);
    }
    stash_count_.fetch_sub(parked.size(), std::memory_order_release);
    for (Closure* c : parked) pool_.release(c);
  }
  stats_.steal_requests_received +=
      steal_reqs_atomic_.exchange(0, std::memory_order_relaxed);
  const std::uint64_t n =
      stolen_count_atomic_.exchange(0, std::memory_order_relaxed);
  stats_.tasks_stolen_from_me += n;
  stats_.stolen_depth_total +=
      stolen_depth_atomic_.exchange(0, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < n; ++i) stats_.note_free();
}

void WorkerCore::install_stolen(Closure closure) {
  ++stats_.tasks_stolen_by_me;
  stats_.note_alloc();
  Closure* c = adopt(std::move(closure));
  // A concurrently stolen closure can arrive unnamed (lazy spawn; thieves
  // cannot touch the victim's id allocator): name it from this core's own
  // band, which is globally unique.  Synchronized steals always arrive
  // named (the victim materialized), so this is a no-op for them.
  materialize(c);
  // Track where this task's result is claimed, so the task can be aborted if
  // that participant dies before we run it.
  stolen_in_.emplace(c->id, c->cont.home);
  refresh_exec_slow_path_();
  push_ready_(c);
  if (tracing()) {
    trace_instant(obs::EventType::kStealSuccess, c->id, ready_count());
  }
}

void WorkerCore::note_steal_request_sent() {
  ++stats_.steal_requests_sent;
  if (tracing()) {
    trace_instant(obs::EventType::kStealRequest, ClosureId{}, 0);
  }
}

void WorkerCore::note_steal_failed() {
  ++stats_.failed_steals;
  if (tracing()) {
    trace_instant(obs::EventType::kStealFail, ClosureId{}, 0);
  }
}

WorkerCore::Deliver WorkerCore::deliver_remote(const ClosureId& target,
                                               std::uint16_t slot,
                                               Value value) {
  Closure* c = waiting_.find(target);
  if (c == nullptr && pending_waiting_) {
    // Network sends carry no pool-pointer hint; a lazily created join must
    // be registered before it can be found by id.
    register_pending_joins_();
    c = waiting_.find(target);
  }
  if (c == nullptr) {
    ++stats_.args_unknown_closure;
    return Deliver::kUnknown;
  }
  return fill_waiting_(c, target, slot, std::move(value));
}

std::vector<Closure> WorkerCore::drain_for_migration() {
  std::vector<Closure> out;
  demote_next_();
  register_pending_joins_();  // the receiving worker addresses joins by id
  for (Closure* c : drain_ready_()) {
    materialize(c);  // the receiving worker addresses these by id
    out.push_back(std::move(*c));
    pool_.release(c);
  }
  waiting_.for_each([&](Closure* c) {
    out.push_back(std::move(*c));
    pool_.release(c);
  });
  waiting_.clear();
  stats_.tasks_migrated_out += out.size();
  for (std::size_t i = 0; i < out.size(); ++i) stats_.note_free();
  if (tracing()) {
    trace_instant(obs::EventType::kMigrateOut, ClosureId{}, out.size());
  }
  return out;
}

void WorkerCore::install_migrated(Closure closure) {
  stats_.note_alloc();
  Closure* c = adopt(std::move(closure));
  if (tracing()) {
    trace_instant(obs::EventType::kMigrateIn, c->id, 0);
  }
  if (c->ready()) {
    push_ready_(c);
  } else {
    waiting_.insert(c);
  }
}

void WorkerCore::install_migration_redo(Closure closure) {
  ++stats_.tasks_migration_redone;
  stats_.note_alloc();
  Closure* c = adopt(std::move(closure));
  if (tracing()) {
    trace_instant(obs::EventType::kMigrationRedo, c->id, 0);
  }
  if (c->ready()) {
    push_ready_(c);
  } else {
    waiting_.insert(c);
  }
}

std::vector<proto::MigrantLedgerEntry> WorkerCore::export_steal_ledger() {
  std::vector<proto::MigrantLedgerEntry> out;
  out.reserve(steal_ledger_.size());
  for (auto& [id, entry] : steal_ledger_) {
    out.push_back(
        proto::MigrantLedgerEntry{entry.thief, std::move(entry.snapshot)});
  }
  steal_ledger_.clear();
  return out;
}

void WorkerCore::adopt_migrant_ledger(net::NodeId thief, Closure snapshot,
                                      bool thief_dead) {
  if (thief_dead) {
    // The thief's death notice predates this adoption; redo now or never.
    stats_.note_alloc();
    ++stats_.tasks_redone;
    ++stats_.tasks_migration_redone;
    if (tracing()) {
      trace_instant(obs::EventType::kRedo, snapshot.id, thief.value);
    }
    push_ready_(adopt(std::move(snapshot)));
    return;
  }
  const ClosureId id = snapshot.id;
  steal_ledger_.emplace(id, LedgerEntry{std::move(snapshot), thief});
}

std::size_t WorkerCore::handle_participant_death(net::NodeId dead) {
  // The fused register could hold an orphan (a stolen task is installed into
  // the register like any other push); demote so removal sees everything.
  demote_next_();
  // 1. Redo: tasks the dead participant stole from us are re-enqueued from
  //    their ledger snapshots.  Slot fill-flags downstream make any work the
  //    thief completed before dying idempotent.
  std::size_t redone = 0;
  for (auto it = steal_ledger_.begin(); it != steal_ledger_.end();) {
    if (it->second.thief == dead) {
      stats_.note_alloc();
      ++stats_.tasks_redone;
      if (tracing()) {
        trace_instant(obs::EventType::kRedo, it->first, dead.value);
      }
      push_ready_(adopt(std::move(it->second.snapshot)));
      it = steal_ledger_.erase(it);
      ++redone;
    } else {
      ++it;
    }
  }
  // 2. Abort orphans: tasks we stole whose results would go to closures on
  //    the dead participant.  Still-queued ones are removed; running or
  //    completed ones are harmless (their sends dead-letter).  Demote again:
  //    step 1's pushes may have refilled the register.
  demote_next_();
  for (auto it = stolen_in_.begin(); it != stolen_in_.end();) {
    if (it->second == dead) {
      if (Closure* removed = remove_ready_(it->first)) {
        stats_.note_free();
        pool_.release(removed);
      }
      it = stolen_in_.erase(it);
    } else {
      ++it;
    }
  }
  refresh_exec_slow_path_();
  return redone;
}

Bytes WorkerCore::export_state() {
  Writer w;
  w.u32(me_.value);
  // The fused register is part of the ready list; demoting it to the deque
  // head preserves the conceptual stack order in the snapshot.
  demote_next_();
  register_pending_joins_();  // snapshots are addressed globally
  const std::size_t nready = ready_count();
  // Snapshots are addressed globally, so every lazily spawned closure gets
  // its name now — before next_seq_ is recorded, so the restored allocator
  // cannot reissue the ids just handed out.
  for (std::size_t i = 0; i < nready; ++i) materialize(ready_at_(i));
  w.u64(next_seq_);
  // Ready tasks, head to tail (re-pushing in reverse order restores them).
  w.u32(static_cast<std::uint32_t>(nready));
  for (std::size_t i = 0; i < nready; ++i) ready_at_(i)->encode(w);
  w.u32(static_cast<std::uint32_t>(waiting_.size()));
  waiting_.for_each([&w](Closure* c) { c->encode(w); });
  return w.take();
}

void WorkerCore::import_state(const Bytes& state) {
  if (has_ready() || !waiting_.empty()) {
    throw std::logic_error("WorkerCore::import_state: core not fresh");
  }
  Reader r(state);
  const net::NodeId origin{r.u32()};
  if (origin != me_) {
    throw std::invalid_argument(
        "WorkerCore::import_state: state belongs to " + net::to_string(origin));
  }
  next_seq_ = r.u64();
  const std::uint32_t ready_count = r.u32();
  std::vector<Closure> ready;
  ready.reserve(ready_count);
  for (std::uint32_t i = 0; i < ready_count && r.ok(); ++i) {
    ready.push_back(Closure::decode(r));
  }
  // Encoded head-first; push back-to-front so the head ends up at the head.
  for (auto it = ready.rbegin(); it != ready.rend(); ++it) {
    stats_.note_alloc();
    push_ready_(adopt(std::move(*it)));
  }
  const std::uint32_t waiting_count = r.ok() ? r.u32() : 0;
  for (std::uint32_t i = 0; i < waiting_count && r.ok(); ++i) {
    Closure c = Closure::decode(r);
    if (!r.ok()) break;
    stats_.note_alloc();
    waiting_.insert(adopt(std::move(c)));
  }
  if (!r.done()) {
    throw std::invalid_argument("WorkerCore::import_state: corrupt state");
  }
}

void WorkerCore::execute_slow_(Closure& closure, const TaskEntry& entry) {
  if (!stolen_in_.empty()) {
    if (closure.id.valid()) {
      stolen_in_.erase(closure.id);  // past the point where aborting helps
    }
    refresh_exec_slow_path_();
  }
  const bool span = tracing() && trace_execute_spans_;
  const std::uint64_t t_start = span ? trace_now() : 0;
  Context ctx(*this, closure);
  entry.fn(ctx, closure, entry.env);
  ++stats_.tasks_executed;
  stats_.executed_depth_total += closure.depth;
  stats_.note_free();
  if (span) {
    obs::TraceEvent e = obs::make_event(
        obs::EventType::kExecute, static_cast<std::uint16_t>(me_.value),
        t_start);
    e.t_end = trace_now();
    e.closure_origin = closure.id.origin.value;
    e.closure_seq = closure.id.seq;
    e.arg = ready_count();
    trace_->emit(e);
  }
}

void WorkerCore::emit_io(const std::string& text) {
  if (hooks_.emit_io) {
    hooks_.emit_io(text);
  } else {
    std::fputs((text + "\n").c_str(), stdout);
  }
}

void WorkerCore::trace_instant(obs::EventType type, const ClosureId& id,
                               std::uint64_t arg) {
  if (!tracing()) return;
  obs::TraceEvent e = obs::make_event(
      type, static_cast<std::uint16_t>(me_.value), trace_now());
  if (id.valid()) {
    e.closure_origin = id.origin.value;
    e.closure_seq = id.seq;
  }
  e.arg = arg;
  trace_->emit(e);
}

}  // namespace phish
