#include "core/worker_core.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/log.hpp"

namespace phish {

WorkerCore::WorkerCore(net::NodeId me, const TaskRegistry& registry,
                       Hooks hooks, const CoreOptions& options)
    : me_(me),
      registry_(registry),
      hooks_(std::move(hooks)),
      options_(options),
      pool_(options.pooled_alloc),
      deque_(options.exec_order, options.steal_order) {
  if (!hooks_.send_remote) {
    throw std::invalid_argument("WorkerCore: send_remote hook is required");
  }
}

void WorkerCore::local_send_unknown_(const ClosureId& target) {
  ++stats_.args_unknown_closure;
  // A local send to an unknown closure is a programming error, not a
  // network artifact.
  PHISH_LOG(kError) << "local send to unknown closure " << to_string(target);
}

void WorkerCore::execute(Closure& closure) {
  const TaskDesc& desc = registry_.get(closure.task);
  if (!stolen_in_.empty() && closure.id.valid()) {
    stolen_in_.erase(closure.id);  // past the point where aborting could help
  }
  last_charge_ = 0;
  const std::uint64_t t_start =
      tracing() && trace_execute_spans_ ? trace_now() : 0;
  Context ctx(*this, closure);
  desc.fn(ctx, closure);
  ++stats_.tasks_executed;
  stats_.executed_depth_total += closure.depth;
  stats_.note_free();
  if (tracing() && trace_execute_spans_) {
    obs::TraceEvent e = obs::make_event(
        obs::EventType::kExecute, static_cast<std::uint16_t>(me_.value),
        t_start);
    e.t_end = trace_now();
    e.closure_origin = closure.id.origin.value;
    e.closure_seq = closure.id.seq;
    e.arg = deque_.size();
    trace_->emit(e);
  }
}

std::optional<Closure> WorkerCore::try_steal(net::NodeId thief) {
  std::vector<Closure> got = try_steal_batch(thief, 1);
  if (got.empty()) return std::nullopt;
  return std::move(got.front());
}

std::vector<Closure> WorkerCore::try_steal_batch(net::NodeId thief,
                                                 std::uint32_t max_tasks) {
  ++stats_.steal_requests_received;
  std::vector<Closure> out;
  if (max_tasks == 0) return out;
  if (max_tasks > kMaxStealBatch) max_tasks = kMaxStealBatch;
  Closure* taken[kMaxStealBatch];
  const std::size_t got = deque_.pop_for_steal_batch(taken, max_tasks);
  out.reserve(got);
  for (std::size_t i = 0; i < got; ++i) {
    Closure* c = taken[i];
    materialize(c);
    ++stats_.tasks_stolen_from_me;
    stats_.stolen_depth_total += c->depth;
    stats_.note_free();  // it leaves this worker
    // Record a redo snapshot in case the thief dies before completing it.
    steal_ledger_.emplace(c->id, LedgerEntry{*c, thief});
    if (tracing()) {
      trace_instant(obs::EventType::kStealServed, c->id, deque_.size());
    }
    out.push_back(std::move(*c));
    pool_.release(c);
  }
  return out;
}

void WorkerCore::install_stolen(Closure closure) {
  ++stats_.tasks_stolen_by_me;
  stats_.note_alloc();
  Closure* c = adopt(std::move(closure));
  // Track where this task's result is claimed, so the task can be aborted if
  // that participant dies before we run it.
  stolen_in_.emplace(c->id, c->cont.home);
  deque_.push(c);
  if (tracing()) {
    trace_instant(obs::EventType::kStealSuccess, c->id, deque_.size());
  }
}

void WorkerCore::note_steal_request_sent() {
  ++stats_.steal_requests_sent;
  if (tracing()) {
    trace_instant(obs::EventType::kStealRequest, ClosureId{}, 0);
  }
}

void WorkerCore::note_steal_failed() {
  ++stats_.failed_steals;
  if (tracing()) {
    trace_instant(obs::EventType::kStealFail, ClosureId{}, 0);
  }
}

WorkerCore::Deliver WorkerCore::deliver_remote(const ClosureId& target,
                                               std::uint16_t slot,
                                               Value value) {
  Closure* c = waiting_.find(target);
  if (c == nullptr) {
    ++stats_.args_unknown_closure;
    return Deliver::kUnknown;
  }
  return fill_waiting_(c, target, slot, std::move(value));
}

std::vector<Closure> WorkerCore::drain_for_migration() {
  std::vector<Closure> out;
  for (Closure* c : deque_.drain()) {
    materialize(c);  // the receiving worker addresses these by id
    out.push_back(std::move(*c));
    pool_.release(c);
  }
  waiting_.for_each([&](Closure* c) {
    out.push_back(std::move(*c));
    pool_.release(c);
  });
  waiting_.clear();
  stats_.tasks_migrated_out += out.size();
  for (std::size_t i = 0; i < out.size(); ++i) stats_.note_free();
  if (tracing()) {
    trace_instant(obs::EventType::kMigrateOut, ClosureId{}, out.size());
  }
  return out;
}

void WorkerCore::install_migrated(Closure closure) {
  stats_.note_alloc();
  Closure* c = adopt(std::move(closure));
  if (tracing()) {
    trace_instant(obs::EventType::kMigrateIn, c->id, 0);
  }
  if (c->ready()) {
    deque_.push(c);
  } else {
    waiting_.insert(c);
  }
}

std::size_t WorkerCore::handle_participant_death(net::NodeId dead) {
  // 1. Redo: tasks the dead participant stole from us are re-enqueued from
  //    their ledger snapshots.  Slot fill-flags downstream make any work the
  //    thief completed before dying idempotent.
  std::size_t redone = 0;
  for (auto it = steal_ledger_.begin(); it != steal_ledger_.end();) {
    if (it->second.thief == dead) {
      stats_.note_alloc();
      ++stats_.tasks_redone;
      if (tracing()) {
        trace_instant(obs::EventType::kRedo, it->first, dead.value);
      }
      deque_.push(adopt(std::move(it->second.snapshot)));
      it = steal_ledger_.erase(it);
      ++redone;
    } else {
      ++it;
    }
  }
  // 2. Abort orphans: tasks we stole whose results would go to closures on
  //    the dead participant.  Still-queued ones are removed; running or
  //    completed ones are harmless (their sends dead-letter).
  for (auto it = stolen_in_.begin(); it != stolen_in_.end();) {
    if (it->second == dead) {
      if (Closure* removed = deque_.remove(it->first)) {
        stats_.note_free();
        pool_.release(removed);
      }
      it = stolen_in_.erase(it);
    } else {
      ++it;
    }
  }
  return redone;
}

Bytes WorkerCore::export_state() {
  Writer w;
  w.u32(me_.value);
  // Snapshots are addressed globally, so every lazily spawned closure gets
  // its name now — before next_seq_ is recorded, so the restored allocator
  // cannot reissue the ids just handed out.
  for (std::size_t i = 0; i < deque_.size(); ++i) materialize(deque_.at(i));
  w.u64(next_seq_);
  // Ready tasks, head to tail (re-pushing in reverse order restores them).
  w.u32(static_cast<std::uint32_t>(deque_.size()));
  for (std::size_t i = 0; i < deque_.size(); ++i) deque_.at(i)->encode(w);
  w.u32(static_cast<std::uint32_t>(waiting_.size()));
  waiting_.for_each([&w](Closure* c) { c->encode(w); });
  return w.take();
}

void WorkerCore::import_state(const Bytes& state) {
  if (!deque_.empty() || !waiting_.empty()) {
    throw std::logic_error("WorkerCore::import_state: core not fresh");
  }
  Reader r(state);
  const net::NodeId origin{r.u32()};
  if (origin != me_) {
    throw std::invalid_argument(
        "WorkerCore::import_state: state belongs to " + net::to_string(origin));
  }
  next_seq_ = r.u64();
  const std::uint32_t ready_count = r.u32();
  std::vector<Closure> ready;
  ready.reserve(ready_count);
  for (std::uint32_t i = 0; i < ready_count && r.ok(); ++i) {
    ready.push_back(Closure::decode(r));
  }
  // Encoded head-first; push back-to-front so the head ends up at the head.
  for (auto it = ready.rbegin(); it != ready.rend(); ++it) {
    stats_.note_alloc();
    deque_.push(adopt(std::move(*it)));
  }
  const std::uint32_t waiting_count = r.ok() ? r.u32() : 0;
  for (std::uint32_t i = 0; i < waiting_count && r.ok(); ++i) {
    Closure c = Closure::decode(r);
    if (!r.ok()) break;
    stats_.note_alloc();
    waiting_.insert(adopt(std::move(c)));
  }
  if (!r.done()) {
    throw std::invalid_argument("WorkerCore::import_state: corrupt state");
  }
}

void WorkerCore::emit_io(const std::string& text) {
  if (hooks_.emit_io) {
    hooks_.emit_io(text);
  } else {
    std::fputs((text + "\n").c_str(), stdout);
  }
}

void WorkerCore::trace_instant(obs::EventType type, const ClosureId& id,
                               std::uint64_t arg) {
  if (!tracing()) return;
  obs::TraceEvent e = obs::make_event(
      type, static_cast<std::uint16_t>(me_.value), trace_now());
  if (id.valid()) {
    e.closure_origin = id.origin.value;
    e.closure_seq = id.seq;
  }
  e.arg = arg;
  trace_->emit(e);
}

}  // namespace phish
