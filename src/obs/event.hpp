// The structured trace event: one fixed-size binary record per scheduler
// action, covering the full task lifecycle the paper's evaluation reasons
// about (spawn, execute, steal, synchronization, migration, fault recovery)
// plus the RPC layer underneath it.
#pragma once

#include <cstdint>

namespace phish::obs {

enum class EventType : std::uint16_t {
  kSpawn = 1,          // ready closure created locally
  kExecute = 2,        // span: t_start..t_end of one task execution
  kStealRequest = 3,   // thief: request sent (or about to be)
  kStealSuccess = 4,   // thief: stolen closure installed
  kStealFail = 5,      // thief: request found nothing / victim unreachable
  kStealServed = 6,    // victim: surrendered a task to a thief
  kArgSend = 7,        // synchronization initiated here (arg = 1 if remote)
  kArgRecv = 8,        // argument delivered into a hosted closure
  kMigrateOut = 9,     // departure: closures drained (arg = count)
  kMigrateIn = 10,     // migrated closure installed
  kReclaim = 11,       // owner reclaimed this workstation
  kCrash = 12,         // fault injection killed this worker
  kRedo = 13,          // ledger snapshot re-enqueued after a thief died
  kRpcSend = 14,       // datagram left this node (arg = message type)
  kRpcRecv = 15,       // datagram arrived at this node (arg = message type)
  kMigrateRereg = 16,  // successor: ledgered cargo installed (arg = count)
  kMigrationRedo = 17, // migration-ledger cargo re-enqueued after holder died
};

const char* to_string(EventType type) noexcept;

/// Fixed-size (40-byte) binary record.  Instant events carry t_start ==
/// t_end; spans (kExecute) carry both.  `closure_origin`/`closure_seq` name
/// the closure involved (zero when the event is not about one closure), and
/// `arg` is a per-type payload: remote flag for kArgSend, drained count for
/// kMigrateOut, wire message type for kRpcSend/kRpcRecv, ready-deque depth
/// after the operation for kSpawn/kExecute.
struct TraceEvent {
  std::uint64_t t_start = 0;
  std::uint64_t t_end = 0;
  std::uint64_t closure_seq = 0;
  std::uint64_t arg = 0;
  std::uint32_t closure_origin = 0;
  std::uint16_t type = 0;
  std::uint16_t worker = 0;
};
static_assert(sizeof(TraceEvent) == 40, "TraceEvent must stay fixed-size");

inline TraceEvent make_event(EventType type, std::uint16_t worker,
                             std::uint64_t t) {
  TraceEvent e;
  e.type = static_cast<std::uint16_t>(type);
  e.worker = worker;
  e.t_start = t;
  e.t_end = t;
  return e;
}

}  // namespace phish::obs
