// Availability accounting for sustained-churn runs.
//
// The paper's adaptive-parallelism claim — jobs keep running while
// workstations come and go — is only a production claim if it comes with a
// number.  AvailabilityMeter turns a churn run into that number: it keeps a
// capacity timeline (which of N nodes were live when), closes per-node
// outage windows into exact MTTR samples, attributes executed work as
// useful / redone / lost, and reduces everything to the SLO quantities the
// churn sweep exports into BENCH_availability.json:
//
//   availability        time-integral of live/total over the run
//   work_redone_pct     re-executed tasks as a share of all executed tasks
//   mttr p50/p99        per-node down -> back-up, exact percentiles
//   steady_state_ns     when live capacity last rose to the watermark and
//                       stayed there (0 when it never dipped; span when it
//                       never recovered)
//
// "Lost" work is work that vanished without redo — accepted jobs that
// neither completed nor were cancelled.  The conservation gate requires it
// to be zero; the meter reports it rather than assuming it.
//
// Clock-agnostic: callers feed whichever clock domain they run in
// (virtual ns for simdist, steady wall-clock ns for udp).  Thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace phish::obs {

class AvailabilityMeter {
 public:
  /// `total_nodes` live at `start_ns`; nodes are keyed by caller-chosen ids.
  AvailabilityMeter(int total_nodes, std::uint64_t start_ns);

  /// Node left the pool (crash, owner reclaim, rack loss) at `now_ns`.
  /// A repeat down for an already-down node is ignored.
  void node_down(std::uint64_t node_key, std::uint64_t now_ns);
  /// Node returned at `now_ns`; closes its outage window into an MTTR
  /// sample.  An up for a node that was never down is ignored.
  void node_up(std::uint64_t node_key, std::uint64_t now_ns);

  /// Work attribution, fed from WorkerStats / JobService counters at the
  /// end of the run (or incrementally).
  void record_work(std::uint64_t useful_tasks, std::uint64_t redone_tasks,
                   std::uint64_t lost_jobs);

  int live_nodes() const;

  struct Report {
    double availability = 1.0;        // integral of live/total over the span
    std::uint64_t span_ns = 0;
    std::uint64_t downs = 0;
    std::uint64_t ups = 0;
    std::uint64_t mttr_count = 0;
    std::uint64_t mttr_p50_ns = 0;
    std::uint64_t mttr_p99_ns = 0;
    std::uint64_t mttr_max_ns = 0;
    std::uint64_t useful_tasks = 0;
    std::uint64_t redone_tasks = 0;
    std::uint64_t lost_jobs = 0;
    double work_redone_pct = 0.0;     // redone / (useful + redone) * 100
    /// Time (from start) at which live capacity last crossed up to
    /// >= watermark * total and stayed there to the end of the span.
    std::uint64_t steady_state_ns = 0;
    bool steady = true;               // false: still below watermark at end
  };

  /// Reduce the timeline to the report.  May be called repeatedly.
  Report finish(std::uint64_t end_ns, double watermark = 1.0) const;

 private:
  struct Edge {
    std::uint64_t at_ns;
    int live;  // live count AFTER this edge
  };

  mutable std::mutex mutex_;
  int total_;
  int live_;
  std::uint64_t start_ns_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, std::uint64_t> down_since_;
  std::vector<std::uint64_t> mttr_ns_;
  std::uint64_t downs_ = 0;
  std::uint64_t ups_ = 0;
  std::uint64_t useful_ = 0;
  std::uint64_t redone_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace phish::obs
