// Lock-free single-producer / single-consumer ring of fixed-size records.
//
// This is the tracer's hot-path sink: each worker thread owns exactly one
// ring as its producer, and the exporter (or a live monitor) is the single
// consumer.  Guarantees:
//
//   * try_push never blocks and never allocates; when the ring is full the
//     record is dropped and `dropped()` counts it (back-pressure must never
//     stall the scheduler being observed);
//   * producer and consumer touch disjoint cache lines for their indices
//     (no false sharing on the only contended state);
//   * correct under TSan: slots are published with a release store of the
//     head and consumed after an acquire load, so a snapshot taken while the
//     producer runs sees only fully-written records.
//
// Capacity is rounded up to a power of two so index masking is one AND.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace phish::obs {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_hint = 1u << 16)
      : mask_(round_up_pow2(capacity_hint) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer only.  Returns false (and counts a drop) when full.
  bool try_push(const T& value) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only.  Appends every available record to `out` and consumes
  /// them; returns how many were taken.
  std::size_t drain(std::vector<T>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    tail_.store(head, std::memory_order_release);
    return static_cast<std::size_t>(head - tail);
  }

  /// Consumer only.  Reads without consuming: the producer cannot overwrite
  /// the copied range because it never advances past tail + capacity.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    out.reserve(static_cast<std::size_t>(head - tail));
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    return out;
  }

  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }
  bool empty() const noexcept { return size() == 0; }

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Total records ever accepted (pushed minus drops).
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  const std::uint64_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};   // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};   // consumer-owned
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace phish::obs
