#include "obs/availability.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace phish::obs {

AvailabilityMeter::AvailabilityMeter(int total_nodes, std::uint64_t start_ns)
    : total_(total_nodes < 1 ? 1 : total_nodes),
      live_(total_),
      start_ns_(start_ns) {}

void AvailabilityMeter::node_down(std::uint64_t node_key,
                                  std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!down_since_.try_emplace(node_key, now_ns).second) return;
  ++downs_;
  --live_;
  edges_.push_back({now_ns, live_});
  Registry::global().counter("availability.node_downs").inc();
}

void AvailabilityMeter::node_up(std::uint64_t node_key, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = down_since_.find(node_key);
  if (it == down_since_.end()) return;
  const std::uint64_t mttr = now_ns >= it->second ? now_ns - it->second : 0;
  down_since_.erase(it);
  ++ups_;
  ++live_;
  edges_.push_back({now_ns, live_});
  mttr_ns_.push_back(mttr);
  Registry::global().counter("availability.node_ups").inc();
  Registry::global().histogram("availability.mttr_ns").observe(mttr);
}

void AvailabilityMeter::record_work(std::uint64_t useful_tasks,
                                    std::uint64_t redone_tasks,
                                    std::uint64_t lost_jobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  useful_ += useful_tasks;
  redone_ += redone_tasks;
  lost_ += lost_jobs;
  Registry::global().counter("work.useful").inc(useful_tasks);
  Registry::global().counter("work.redone").inc(redone_tasks);
  Registry::global().counter("work.lost").inc(lost_jobs);
}

int AvailabilityMeter::live_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

AvailabilityMeter::Report AvailabilityMeter::finish(std::uint64_t end_ns,
                                                    double watermark) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Report r;
  r.span_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  r.downs = downs_;
  r.ups = ups_;
  r.useful_tasks = useful_;
  r.redone_tasks = redone_;
  r.lost_jobs = lost_;
  const std::uint64_t executed = useful_ + redone_;
  r.work_redone_pct =
      executed > 0
          ? 100.0 * static_cast<double>(redone_) / static_cast<double>(executed)
          : 0.0;

  // Exact MTTR percentiles from the raw samples.
  if (!mttr_ns_.empty()) {
    std::vector<std::uint64_t> sorted = mttr_ns_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)];
    };
    r.mttr_count = sorted.size();
    r.mttr_p50_ns = at(0.50);
    r.mttr_p99_ns = at(0.99);
    r.mttr_max_ns = sorted.back();
  }

  // Capacity integral + steady-state detection over the edge timeline.
  // steady_state_ns = the last time capacity rose to >= watermark and then
  // stayed there; "time to steady state" after the final disruption.
  const int threshold = static_cast<int>(
      watermark * static_cast<double>(total_) + 0.999999);  // ceil
  double live_dt = 0.0;
  int live = total_;
  std::uint64_t t = start_ns_;
  std::uint64_t last_cross_up = 0;  // relative to start
  bool above = live >= threshold;
  for (const Edge& e : edges_) {
    const std::uint64_t at = std::max(e.at_ns, t);
    live_dt += static_cast<double>(live) * static_cast<double>(at - t);
    t = at;
    const bool now_above = e.live >= threshold;
    if (now_above && !above) {
      last_cross_up = t >= start_ns_ ? t - start_ns_ : 0;
    }
    above = now_above;
    live = e.live;
  }
  if (end_ns > t) {
    live_dt += static_cast<double>(live) * static_cast<double>(end_ns - t);
  }
  r.availability =
      r.span_ns > 0
          ? live_dt / (static_cast<double>(total_) *
                       static_cast<double>(r.span_ns))
          : 1.0;
  r.steady = above;
  r.steady_state_ns = above ? last_cross_up : r.span_ns;
  return r;
}

}  // namespace phish::obs
