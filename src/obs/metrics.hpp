// Metrics registry: named counters, gauges, and histograms with cheap
// thread-striped shards and a merge/snapshot API.
//
// Handles are resolved by name once (mutex + map) and cached by the caller;
// after that every update is wait-free:
//
//   * Counter::inc     — one relaxed fetch_add on a per-thread stripe
//     (stripes are cache-line padded, so concurrent writers from different
//     threads never contend on a line);
//   * Gauge::set/add   — one relaxed store/fetch_add;
//   * Histogram::observe — one relaxed fetch_add on a log2 bucket stripe.
//
// snapshot() merges all stripes into plain structs — the single aggregation
// path the runtimes and bench exporters report through (superseding per-call
// hand-rolled summation).  Registry::global() is the process-wide instance;
// tests may construct private registries.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace phish::obs {

namespace detail {
constexpr std::size_t kStripes = 16;
/// Stable small index for the calling thread, assigned on first use.
std::size_t stripe_index() noexcept;
struct alignas(64) Stripe {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    stripes_[detail::stripe_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Stripe, detail::kStripes> stripes_;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged, immutable view of one histogram: log2 buckets (bucket i counts
/// samples in [2^i, 2^(i+1))) plus count/sum, good enough for the latency
/// percentiles the benches report.
struct HistogramSummary {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Upper bound of the bucket containing quantile q in [0,1] (0 if empty).
  std::uint64_t quantile(double q) const noexcept;
  void merge(const HistogramSummary& other) noexcept;
};

class Histogram {
 public:
  void observe(std::uint64_t v) noexcept {
    const std::size_t stripe = detail::stripe_index();
    shards_[stripe].buckets[bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    shards_[stripe].sum.fetch_add(v, std::memory_order_relaxed);
  }
  HistogramSummary summarize() const noexcept;
  void reset() noexcept {
    for (auto& shard : shards_) {
      for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
      shard.sum.store(0, std::memory_order_relaxed);
    }
  }

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, 64> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kStripes> shards_;
};

/// Plain-struct result of Registry::snapshot().
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry (the runtimes and benches report here).
  static Registry& global();

  /// Create-or-get by name.  Returned references live as long as the
  /// registry; resolve once and cache.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zero every metric (bench reps; the handles stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace phish::obs
