#include "obs/trace_file.hpp"

#include <cstdio>
#include <set>

#include "obs/json.hpp"

namespace phish::obs {

namespace {
constexpr std::uint64_t kMagic = 0x31454341'52544850ULL;  // "PHTRACE1"
constexpr std::uint32_t kVersion = 1;
}  // namespace

Bytes encode_trace(const TraceData& data) {
  Writer w;
  w.u64(kMagic);
  w.u32(kVersion);
  w.str(data.runtime);
  w.u8(static_cast<std::uint8_t>(data.clock));
  w.u64(data.seed);
  w.u32(data.participants);
  w.u64(data.dropped);
  w.u64(data.events.size());
  for (const TraceEvent& e : data.events) {
    w.u64(e.t_start);
    w.u64(e.t_end);
    w.u64(e.closure_seq);
    w.u64(e.arg);
    w.u32(e.closure_origin);
    w.u16(e.type);
    w.u16(e.worker);
  }
  return w.take();
}

std::optional<TraceData> decode_trace(const Bytes& bytes) {
  Reader r(bytes);
  if (r.u64() != kMagic || r.u32() != kVersion) return std::nullopt;
  TraceData data;
  data.runtime = r.str();
  data.clock = static_cast<ClockDomain>(r.u8());
  data.seed = r.u64();
  data.participants = r.u32();
  data.dropped = r.u64();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > (std::uint64_t{1} << 32)) return std::nullopt;
  data.events.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    TraceEvent e;
    e.t_start = r.u64();
    e.t_end = r.u64();
    e.closure_seq = r.u64();
    e.arg = r.u64();
    e.closure_origin = r.u32();
    e.type = r.u16();
    e.worker = r.u16();
    data.events.push_back(e);
  }
  if (!r.done()) return std::nullopt;
  return data;
}

bool write_trace_file(const std::string& path, const TraceData& data) {
  const Bytes bytes = encode_trace(data);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

std::optional<TraceData> read_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  Bytes bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return decode_trace(bytes);
}

std::string chrome_trace_json(const TraceData& data) {
  JsonWriter json;
  json.begin_object();
  json.key("otherData");
  json.begin_object();
  json.kv("runtime", data.runtime);
  json.kv("clock_domain",
          data.clock == ClockDomain::kVirtual ? "virtual" : "steady");
  json.kv("seed", data.seed);
  json.kv("participants", static_cast<std::uint64_t>(data.participants));
  json.kv("events_dropped", data.dropped);
  json.end_object();
  json.key("traceEvents");
  json.begin_array();

  // Name the per-worker threads first (Perfetto shows these as track names).
  std::set<std::uint16_t> workers;
  for (const TraceEvent& e : data.events) workers.insert(e.worker);
  for (const std::uint16_t w : workers) {
    json.begin_object();
    json.kv("name", "thread_name");
    json.kv("ph", "M");
    json.kv("pid", 0);
    json.kv("tid", static_cast<std::int64_t>(w));
    json.key("args");
    json.begin_object();
    json.kv("name", "worker " + std::to_string(w));
    json.end_object();
    json.end_object();
  }

  for (const TraceEvent& e : data.events) {
    const auto type = static_cast<EventType>(e.type);
    json.begin_object();
    json.kv("name", to_string(type));
    json.kv("cat", "phish");
    if (type == EventType::kExecute) {
      json.kv("ph", "X");
      json.kv("ts", static_cast<double>(e.t_start) / 1000.0);
      json.kv("dur", static_cast<double>(e.t_end - e.t_start) / 1000.0);
    } else {
      json.kv("ph", "i");
      json.kv("ts", static_cast<double>(e.t_start) / 1000.0);
      json.kv("s", "t");
    }
    json.kv("pid", 0);
    json.kv("tid", static_cast<std::int64_t>(e.worker));
    json.key("args");
    json.begin_object();
    if (e.closure_origin != 0 || e.closure_seq != 0) {
      json.kv("closure", "n" + std::to_string(e.closure_origin) + "#" +
                             std::to_string(e.closure_seq));
    }
    json.kv("arg", e.arg);
    json.end_object();
    json.end_object();

    // Ready-deque depth rides along as a counter track: spawn/execute/steal
    // events carry the post-operation depth in `arg`.
    if (type == EventType::kSpawn || type == EventType::kExecute ||
        type == EventType::kStealSuccess || type == EventType::kStealServed) {
      json.begin_object();
      json.kv("name", "ready_depth_w" + std::to_string(e.worker));
      json.kv("ph", "C");
      json.kv("ts", static_cast<double>(type == EventType::kExecute
                                            ? e.t_end
                                            : e.t_start) /
                        1000.0);
      json.kv("pid", 0);
      json.key("args");
      json.begin_object();
      json.kv("depth", e.arg);
      json.end_object();
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  return json.take();
}

bool write_chrome_trace(const std::string& path, const TraceData& data) {
  const std::string out = chrome_trace_json(data);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

}  // namespace phish::obs
