#include "obs/tracer.hpp"

#include <algorithm>

namespace phish::obs {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kSpawn: return "spawn";
    case EventType::kExecute: return "execute";
    case EventType::kStealRequest: return "steal_request";
    case EventType::kStealSuccess: return "steal_success";
    case EventType::kStealFail: return "steal_fail";
    case EventType::kStealServed: return "steal_served";
    case EventType::kArgSend: return "arg_send";
    case EventType::kArgRecv: return "arg_recv";
    case EventType::kMigrateOut: return "migrate_out";
    case EventType::kMigrateIn: return "migrate_in";
    case EventType::kReclaim: return "reclaim";
    case EventType::kCrash: return "crash";
    case EventType::kRedo: return "redo";
    case EventType::kRpcSend: return "rpc_send";
    case EventType::kRpcRecv: return "rpc_recv";
    case EventType::kMigrateRereg: return "migrate_rereg";
    case EventType::kMigrationRedo: return "migration_redo";
  }
  return "unknown";
}

TraceShard* Tracer::shard(std::uint16_t tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : shards_) {
    if (s->tid() == tid) return s.get();
  }
  shards_.push_back(std::unique_ptr<TraceShard>(
      new TraceShard(&enabled_, tid, shard_capacity_)));
  return shards_.back().get();
}

std::vector<TraceEvent> Tracer::collect() {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& s : shards_) {
      s->ring_.drain(events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.t_start != b.t_start) return a.t_start < b.t_start;
              if (a.worker != b.worker) return a.worker < b.worker;
              if (a.type != b.type) return a.type < b.type;
              return a.closure_seq < b.closure_seq;
            });
  return events;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->dropped();
  return total;
}

std::size_t Tracer::shard_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

}  // namespace phish::obs
