// Binary trace container (.phtrace) and the Chrome/Perfetto trace.json
// exporter.
//
// A TraceData is one run's collected events plus the metadata a reader
// needs to interpret them: which runtime produced it, which clock domain
// the timestamps live in (virtual simulated time vs steady wall-clock),
// the seed, and how many events the rings dropped.  The binary format is
// the serial/buffer little-endian encoding, so the phish-trace CLI can load
// traces from any runtime; the Chrome export turns kExecute records into
// duration spans and everything else into instant events, with per-worker
// ready-deque-depth counter tracks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/tracer.hpp"
#include "serial/buffer.hpp"

namespace phish::obs {

enum class ClockDomain : std::uint8_t {
  kSteady = 0,   // wall-clock ns (threads / UDP runtimes)
  kVirtual = 1,  // simulated ns (simdist runtime)
};

struct TraceData {
  std::string runtime;  // "threads" | "simdist" | "udp" | ...
  ClockDomain clock = ClockDomain::kSteady;
  std::uint64_t seed = 0;
  std::uint32_t participants = 0;
  std::uint64_t dropped = 0;  // ring overflow drops across all shards
  std::vector<TraceEvent> events;

  /// Drain `tracer` into this TraceData (events end up sorted).
  void take_from(Tracer& tracer) {
    events = tracer.collect();
    dropped = tracer.total_dropped();
  }
};

Bytes encode_trace(const TraceData& data);
std::optional<TraceData> decode_trace(const Bytes& bytes);

/// Write/read the binary container.  Returns false / nullopt on I/O failure.
bool write_trace_file(const std::string& path, const TraceData& data);
std::optional<TraceData> read_trace_file(const std::string& path);

/// Chrome trace-event JSON (load in Perfetto or chrome://tracing).
/// Byte-deterministic for a given TraceData.
std::string chrome_trace_json(const TraceData& data);
bool write_chrome_trace(const std::string& path, const TraceData& data);

}  // namespace phish::obs
