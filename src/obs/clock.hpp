// Clock domains for the observability subsystem.
//
// Trace timestamps must be meaningful within one run but the notion of "now"
// differs per runtime: the simulated-distributed runtime lives in virtual
// time (sim::Simulator::now), while the threads and UDP runtimes live in
// steady wall-clock time.  obs::Clock is the one interface both sides of
// that divide implement, so the tracer, the exporters, and the phish-trace
// CLI never need to know which domain produced a trace.
#pragma once

#include <cstdint>

#include "util/timer.hpp"

namespace phish::obs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary per-run epoch.  Monotone within a run.
  virtual std::uint64_t now_ns() const = 0;
};

/// Wall-clock domain (threads and UDP runtimes): std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() const override { return monotonic_ns(); }
};

/// Virtual-time domain: adapts any `now()`-shaped source (sim::Simulator) so
/// obs does not depend on the simulator library.
template <typename Source>
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(const Source& source) : source_(source) {}
  std::uint64_t now_ns() const override { return source_.now(); }

 private:
  const Source& source_;
};

}  // namespace phish::obs
