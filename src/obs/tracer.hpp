// Structured event tracer: per-worker lock-free rings of fixed-size records.
//
// Hot-path contract (the reason this design exists): recording an event is a
// relaxed flag load, a clock read, and one SPSC ring push — no locks, no
// allocation, no syscalls — and when the ring is full the event is dropped
// and counted rather than ever stalling the scheduler.  Two switches guard
// the cost:
//
//   * compile-time: build with -DPHISH_OBS_TRACING=0 (CMake option
//     PHISH_OBS_TRACING=OFF) and every emit site compiles away entirely;
//   * runtime: a Tracer starts enabled but can be toggled; emit() on a
//     disabled tracer is a single relaxed load.  Code that was never handed
//     a shard (the default) pays one null-pointer test.
//
// Threading: shard(tid) hands each producer thread its own ring; collect()
// is the single consumer and may run concurrently with producers (snapshot
// mode) or after the run (drain).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/event.hpp"
#include "obs/ring_buffer.hpp"

#ifndef PHISH_OBS_TRACING
#define PHISH_OBS_TRACING 1
#endif

namespace phish::obs {

class Tracer;

/// One producer endpoint: the per-worker ring plus the owning tracer's
/// enable flag.  Obtained from Tracer::shard(); stable for the tracer's
/// lifetime.
class TraceShard {
 public:
  void emit(const TraceEvent& event) noexcept {
#if PHISH_OBS_TRACING
    if (!enabled_->load(std::memory_order_relaxed)) return;
    ring_.try_push(event);
#else
    (void)event;
#endif
  }

  /// Runtime switch state; emit sites check this before computing event
  /// arguments (e.g. reading a clock) so a disabled tracer costs one
  /// relaxed load.
  bool enabled() const noexcept {
    return PHISH_OBS_TRACING && enabled_->load(std::memory_order_relaxed);
  }

  std::uint16_t tid() const noexcept { return tid_; }
  std::uint64_t dropped() const noexcept { return ring_.dropped(); }

 private:
  friend class Tracer;
  TraceShard(const std::atomic<bool>* enabled, std::uint16_t tid,
             std::size_t capacity)
      : ring_(capacity), enabled_(enabled), tid_(tid) {}

  SpscRing<TraceEvent> ring_;
  const std::atomic<bool>* enabled_;
  std::uint16_t tid_;
};

class Tracer {
 public:
  /// `shard_capacity` is per worker, rounded up to a power of two.
  explicit Tracer(std::size_t shard_capacity = 1u << 16)
      : shard_capacity_(shard_capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Create-or-get the shard for a worker/node id.  Setup path (mutex);
  /// call once per worker and cache the pointer.
  TraceShard* shard(std::uint16_t tid);

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drain every shard and return all events sorted by (t_start, worker,
  /// type, seq) — a deterministic order, so identical runs yield identical
  /// collections.  Single-consumer; may run while producers are live.
  std::vector<TraceEvent> collect();

  /// Events dropped across all shards because a ring was full.
  std::uint64_t total_dropped() const;

  std::size_t shard_count() const;

 private:
  const std::size_t shard_capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  // guards shards_ layout, not the rings
  std::vector<std::unique_ptr<TraceShard>> shards_;
};

}  // namespace phish::obs
