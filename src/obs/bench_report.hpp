// Machine-readable bench artifacts: BENCH_<name>.json.
//
// Every fig/table bench builds one BenchReport, fills it with the quantities
// its stdout table shows (plus seed, runtime, participant counts), and
// write()s it next to the binary (or into $PHISH_BENCH_DIR).  The payload
// always carries the git sha the binary was configured from, so a stored
// artifact is attributable to a commit — this is the file the perf
// trajectory is judged against.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace phish::obs {

class BenchReport {
 public:
  /// `name` becomes the artifact file name: BENCH_<name>.json.
  explicit BenchReport(std::string name);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, int value);
  void set(const std::string& key, bool value);

  /// Summarized histogram: count, mean, p50/p90/p99 under `key.*`.
  void set_histogram(const std::string& key, const HistogramSummary& h);

  /// Attach a whole metrics snapshot under "metrics".
  void set_metrics(const MetricsSnapshot& snapshot);

  /// Git sha the build was configured at ("unknown" outside a checkout).
  static const char* git_sha();

  std::string json() const;

  /// Output path: $PHISH_BENCH_DIR/BENCH_<name>.json, or ./BENCH_<name>.json.
  std::string path() const;

  /// Serialize to path(); logs to stdout and returns false on I/O failure.
  bool write() const;

 private:
  // Values are pre-rendered JSON fragments; insertion order is kept so the
  // artifact reads in the order the bench reported.
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
  std::string metrics_json_;
};

}  // namespace phish::obs
