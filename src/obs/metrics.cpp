#include "obs/metrics.hpp"

namespace phish::obs {

namespace detail {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

}  // namespace detail

std::uint64_t HistogramSummary::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target && buckets[b] > 0) {
      // Upper bound of bucket b: 2^(b+1) - 1 (bucket 0 holds {0, 1}).
      return b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{2} << b) - 1;
    }
  }
  return 0;
}

void HistogramSummary::merge(const HistogramSummary& other) noexcept {
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
}

HistogramSummary Histogram::summarize() const noexcept {
  HistogramSummary out;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < out.buckets.size(); ++b) {
      const std::uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->summarize();
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0);
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace phish::obs
