#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"

#ifndef PHISH_GIT_SHA
#define PHISH_GIT_SHA "unknown"
#endif

namespace phish::obs {

namespace {

std::string render_string(const std::string& s) {
  return "\"" + JsonWriter::escape(s) + "\"";
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, render_string(value));
}
void BenchReport::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}
void BenchReport::set(const std::string& key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  fields_.emplace_back(key, buf);
}
void BenchReport::set(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}
void BenchReport::set(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}
void BenchReport::set(const std::string& key, int value) {
  set(key, static_cast<std::int64_t>(value));
}
void BenchReport::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void BenchReport::set_histogram(const std::string& key,
                                const HistogramSummary& h) {
  set(key + ".count", h.count);
  set(key + ".mean", h.mean());
  set(key + ".p50", h.quantile(0.50));
  set(key + ".p90", h.quantile(0.90));
  set(key + ".p99", h.quantile(0.99));
}

void BenchReport::set_metrics(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  for (const auto& [name, v] : snapshot.counters) json.kv(name, v);
  for (const auto& [name, v] : snapshot.gauges) json.kv(name, v);
  for (const auto& [name, h] : snapshot.histograms) {
    json.key(name);
    json.begin_object();
    json.kv("count", h.count);
    json.kv("mean", h.mean());
    json.kv("p50", h.quantile(0.50));
    json.kv("p90", h.quantile(0.90));
    json.kv("p99", h.quantile(0.99));
    json.end_object();
  }
  json.end_object();
  metrics_json_ = json.take();
}

const char* BenchReport::git_sha() { return PHISH_GIT_SHA; }

std::string BenchReport::json() const {
  std::string out = "{\"bench\":" + render_string(name_) +
                    ",\"git_sha\":" + render_string(git_sha());
  for (const auto& [key, value] : fields_) {
    out += ",";
    out += render_string(key);
    out += ":";
    out += value;
  }
  if (!metrics_json_.empty()) {
    out += ",\"metrics\":" + metrics_json_;
  }
  out += "}\n";
  return out;
}

std::string BenchReport::path() const {
  const char* dir = std::getenv("PHISH_BENCH_DIR");
  const std::string base = "BENCH_" + name_ + ".json";
  if (dir && *dir) return std::string(dir) + "/" + base;
  return base;
}

bool BenchReport::write() const {
  const std::string target = path();
  const std::string payload = json();
  std::FILE* f = std::fopen(target.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench report: cannot open %s\n", target.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  std::fclose(f);
  std::printf("ARTIFACT %s\n", target.c_str());
  return ok;
}

}  // namespace phish::obs
