// Minimal streaming JSON writer for the observability exporters.
//
// Deterministic output is a hard requirement (the Chrome-trace golden test
// compares bytes across replays), so formatting is fixed: no whitespace
// except where emitted explicitly, "%.17g" doubles, and keys appear in the
// order the caller wrote them.  There is deliberately no parser here — the
// exporters only produce JSON; consumers are Perfetto and scripts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phish::obs {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or container.
  void key(const std::string& name);

  void value(const std::string& s);
  void value(const char* s);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void value(bool v);
  void null();

  /// key + value in one call.
  template <typename T>
  void kv(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  const std::string& str() const noexcept { return out_; }
  std::string take() noexcept { return std::move(out_); }

  static std::string escape(const std::string& s);

 private:
  void comma_for_value();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace phish::obs
