#include "obs/json.hpp"

#include <cstdio>

namespace phish::obs {

void JsonWriter::comma_for_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& s) {
  comma_for_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  comma_for_value();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma_for_value();
  out_ += "null";
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace phish::obs
