#include "testing/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "core/protocol.hpp"
#include "util/rng.hpp"

namespace phish::testing {

ChaosProfile ChaosProfile::udp(int workers) {
  ChaosProfile p;
  p.workers = workers;
  p.max_drop = 0.12;
  p.max_duplicate = 0.08;
  p.max_reorder = 0.08;
  p.max_delay = 0.0;
  p.node_events = false;
  return p;
}

net::FaultPlan make_chaos_plan(std::uint64_t seed,
                               const ChaosProfile& profile) {
  net::FaultPlan plan;
  plan.seed = seed;
  // Phish's reliability envelope: RPC frames retransmit and heartbeats are
  // periodic, so they may be dropped; plain-oneway dataflow (arguments) has
  // no retransmit path and must not be — it stays fair game for
  // duplicate/reorder/delay.  Death notices and migration batches used to
  // be in this list; both now ride acked RPC paths (kRpcControl and the
  // kRpcMigrate durability handshake) and survive drops on their own.
  plan.lossless_types = {proto::kArgument};
  Xoshiro256 rng(mix64(seed ^ 0xc4a05'5eedULL));

  // One blanket rule mangling every link.  Roughly one seed in four gets a
  // heavier "bad segment" rule for a single sender first (first match wins),
  // modelling one workstation behind a lossy transceiver.
  if (profile.workers > 1 && rng.chance(0.25)) {
    net::LinkRule bad;
    bad.src = net::NodeId{static_cast<std::uint32_t>(
        1 + rng.below(static_cast<std::uint64_t>(profile.workers)))};
    bad.drop = profile.max_drop;
    bad.duplicate = profile.max_duplicate;
    bad.reorder = profile.max_reorder;
    plan.links.push_back(bad);
  }
  net::LinkRule all;
  all.drop = rng.uniform() * profile.max_drop;
  all.duplicate = rng.uniform() * profile.max_duplicate;
  all.reorder = rng.uniform() * profile.max_reorder;
  all.delay = rng.uniform() * profile.max_delay;
  if (all.delay > 0 && profile.max_extra_delay_ns > 0) {
    all.extra_delay_ns = 1 + rng.below(profile.max_extra_delay_ns);
  }
  all.reorder_depth = static_cast<int>(1 + rng.below(4));
  plan.links.push_back(all);

  if (!profile.node_events || profile.workers < 2) return plan;

  const auto victim = [&] {
    return static_cast<int>(
        1 + rng.below(static_cast<std::uint64_t>(profile.workers - 1)));
  };
  const auto when = [&] {
    return profile.min_event_ns +
           rng.below(profile.event_horizon_ns - profile.min_event_ns + 1);
  };

  // One node-event *category* per plan (crash XOR reclaim XOR partition);
  // the sweep over seeds covers them all.  Categories 1-3 stay pure so each
  // failure mode is attributable.  Categories 6 and 7 deliberately COMPOSE
  // a reclaim with a crash — the compositions that used to be documented as
  // unsurvivable: the migration durability ledger (acked handoff + holder
  // tracking + coordinator redelivery) is what makes them pass now.
  std::vector<int> categories{0, 1, 2, 3};
  if (profile.coordinator_crash) categories.push_back(4);
  if (profile.crash_rejoin) categories.push_back(5);
  if (profile.reclaim_then_crash) categories.push_back(6);
  if (profile.migrate_midflight_crash) categories.push_back(7);
  if (profile.failover_only) {
    categories.clear();
    if (profile.coordinator_crash) categories.push_back(4);
    if (profile.crash_rejoin) categories.push_back(5);
    if (profile.reclaim_then_crash) categories.push_back(6);
    if (profile.migrate_midflight_crash) categories.push_back(7);
    if (categories.empty()) categories.push_back(0);
  }
  const int category = categories[rng.below(categories.size())];
  if (category == 1 && profile.max_crashes > 0) {
    const int n = 1 + static_cast<int>(
                          rng.below(static_cast<unsigned>(profile.max_crashes)));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back({when(), net::NodeFaultKind::kCrash, victim()});
    }
  } else if (category == 2 && profile.max_reclaims > 0) {
    const int n = 1 + static_cast<int>(rng.below(
                          static_cast<unsigned>(profile.max_reclaims)));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back({when(), net::NodeFaultKind::kReclaim, victim()});
    }
  } else if (category == 3 && profile.max_partitions > 0) {
    // A transient (healed) partition is survivable only while the cut worker
    // provably holds no closures: every way to *acquire* work — registration,
    // steal replies, migration-free startup — rides RPC, which retransmits
    // past the heal, but work *results* are oneways that a cut would lose.
    // So the window starts at t=0, before the victim can have any work.
    const int w = victim();
    const std::uint64_t heal =
        40'000'000 + rng.below(profile.max_partition_ns);
    plan.events.push_back({0, net::NodeFaultKind::kPartition, w});
    plan.events.push_back({heal, net::NodeFaultKind::kHeal, w});
  } else if (category == 4) {
    // Crash the primary Clearinghouse mid-job: the warm standby must notice
    // the missed lease, promote itself, and the job must still finish.
    plan.events.push_back(
        {when(), net::NodeFaultKind::kCrash, net::kCoordinatorWorker});
  } else if (category == 5) {
    // Kill one worker, then bring it back as a fresh incarnation: the full
    // crash -> detect -> redo -> rejoin -> finish round trip.
    const int w = victim();
    const std::uint64_t t_crash = when();
    const std::uint64_t t_rejoin =
        t_crash + 100'000'000 + rng.below(profile.max_rejoin_delay_ns + 1);
    plan.events.push_back({t_crash, net::NodeFaultKind::kCrash, w});
    plan.events.push_back({t_rejoin, net::NodeFaultKind::kRestart, w});
  } else if (category == 6) {
    // Crash-after-reclaim: an owner return migrates closures out, then a
    // crash moments later may land on the very successor that took them.
    // The inherited cargo is in no steal ledger; the coordinator's
    // migration ledger must notice the holder died and redeliver.
    const int reclaimed = victim();
    int crashed = victim();
    if (profile.workers > 2) {
      while (crashed == reclaimed) crashed = victim();
    }
    const std::uint64_t t = when();
    plan.events.push_back({t, net::NodeFaultKind::kReclaim, reclaimed});
    plan.events.push_back({t + rng.below(profile.reclaim_crash_gap_ns + 1),
                           net::NodeFaultKind::kCrash, crashed});
  } else if (category == 7) {
    // Migrate-midflight crash: the SAME worker crashes shortly after its
    // owner reclaims it — inside the durability handshake, between ledger
    // registration, cargo handoff, and holder confirmation.  Whatever step
    // it died at, either the ledger redelivery or the victims' standard
    // death-redo must cover the cargo.
    const int w = victim();
    const std::uint64_t t = when();
    plan.events.push_back({t, net::NodeFaultKind::kReclaim, w});
    plan.events.push_back({t + rng.below(profile.midflight_crash_gap_ns + 1),
                           net::NodeFaultKind::kCrash, w});
  }
  // category 0 (or an exhausted max_*): link faults only.  Stable sort:
  // categories 6/7 can draw a zero gap, and the reclaim must stay ahead of
  // its paired crash when both land on the same instant.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const net::NodeEvent& a, const net::NodeEvent& b) {
                     return a.at_ns < b.at_ns;
                   });
  return plan;
}

net::FaultPlan make_churn_plan(std::uint64_t seed,
                               const ChurnProfile& profile) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.lossless_types = {proto::kArgument};
  const int rack_size = std::max(profile.rack_size, 1);
  for (int base = 0; base < profile.workers; base += rack_size) {
    std::vector<int> rack;
    for (int w = base; w < std::min(base + rack_size, profile.workers); ++w) {
      rack.push_back(w);
    }
    plan.racks.push_back(std::move(rack));
  }
  if (profile.primary_churn && profile.horizon_ns / 2 > profile.min_event_ns) {
    // Primary-churn event class: the active Clearinghouse crashes once,
    // mid-storm, and never comes back — the standby must promote while the
    // membership is in flux.  Early half of the horizon only, so the run
    // still observes a long post-failover stretch.  Independent rng stream:
    // the worker-churn schedule below is identical with the knob off.
    Xoshiro256 prng(mix64(seed ^ 0x9e1a'0cfa'11edULL));
    const std::uint64_t t_primary =
        profile.min_event_ns +
        prng.below(profile.horizon_ns / 2 - profile.min_event_ns);
    plan.events.push_back(
        {t_primary, net::NodeFaultKind::kCrash, net::kCoordinatorWorker});
  }
  if (profile.workers < 2 || profile.churn_rate_hz <= 0.0) {
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const net::NodeEvent& a, const net::NodeEvent& b) {
                       return a.at_ns < b.at_ns;
                     });
    return plan;
  }

  Xoshiro256 rng(mix64(seed ^ 0xc842'c442'5eedULL));
  const auto exp_sample = [&rng](double mean) {
    // Guard the log: uniform() may return 0.
    double u = rng.uniform();
    if (u <= 0.0) u = 1e-12;
    return -std::log(u) * mean;
  };
  const auto downtime = [&]() -> std::uint64_t {
    const double extra = exp_sample(
        static_cast<double>(profile.mean_downtime_ns));
    return profile.min_downtime_ns + static_cast<std::uint64_t>(extra);
  };

  // Per-worker state machine: worker w is live at time t iff t >= up_at[w].
  // Worker 0 (the submitting workstation) is immune, as in ChaosProfile.
  std::vector<std::uint64_t> up_at(static_cast<std::size_t>(profile.workers),
                                   0);
  const auto live_count = [&](std::uint64_t now) {
    int live = 0;
    for (std::uint64_t u : up_at) {
      if (now >= u) ++live;
    }
    return live;
  };
  const double mean_gap_ns = 1e9 / profile.churn_rate_hz;
  double t = static_cast<double>(profile.min_event_ns);
  for (;;) {
    t += exp_sample(mean_gap_ns);
    if (t >= static_cast<double>(profile.horizon_ns)) break;
    const auto now = static_cast<std::uint64_t>(t);
    int live = live_count(now);
    if (rng.chance(profile.correlation) && plan.racks.size() > 1) {
      // Correlated loss: a whole rack goes dark at once.  Victims rejoin
      // independently (machines reboot at their own pace), which doubles as
      // a register-storm test on the coordinator.
      const auto& rack = plan.racks[rng.below(plan.racks.size())];
      for (int w : rack) {
        if (w == 0 || now < up_at[static_cast<std::size_t>(w)]) continue;
        if (live <= profile.min_live) break;
        const std::uint64_t back = now + downtime();
        plan.events.push_back({now, net::NodeFaultKind::kCrash, w});
        plan.events.push_back({back, net::NodeFaultKind::kRestart, w});
        up_at[static_cast<std::size_t>(w)] = back;
        --live;
      }
      continue;
    }
    // Independent leave: one live victim (never worker 0).
    if (live <= profile.min_live) continue;
    std::vector<int> candidates;
    for (int w = 1; w < profile.workers; ++w) {
      if (now >= up_at[static_cast<std::size_t>(w)]) candidates.push_back(w);
    }
    if (candidates.empty()) continue;
    const int w = candidates[rng.below(candidates.size())];
    const auto kind = rng.chance(profile.reclaim_fraction)
                          ? net::NodeFaultKind::kReclaim
                          : net::NodeFaultKind::kCrash;
    const std::uint64_t back = now + downtime();
    plan.events.push_back({now, kind, w});
    plan.events.push_back({back, net::NodeFaultKind::kRestart, w});
    up_at[static_cast<std::size_t>(w)] = back;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const net::NodeEvent& a, const net::NodeEvent& b) {
                     return a.at_ns < b.at_ns;
                   });
  return plan;
}

}  // namespace phish::testing
