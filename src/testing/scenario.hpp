// Seeded chaos scenarios: one 64-bit seed -> one reproducible FaultPlan.
//
// The chaos harness (tests/harness/) runs every application on every runtime
// under many of these plans; a failing run prints nothing but the seed and
// the plan, which is all anyone needs to replay it byte-for-byte.  The
// generator maps the paper's failure modes onto plan elements:
//
//   paper failure mode                plan element
//   ------------------------------    ---------------------------------
//   message loss on the Ethernet      LinkRule.drop
//   UDP duplication / reordering      LinkRule.duplicate / .reorder
//   congested segments                LinkRule.delay (+extra_delay_ns)
//   machine crash                     NodeEvent kCrash
//   transient network outage          NodeEvent kPartition ... kHeal
//   owner returns to workstation      NodeEvent kReclaim
#pragma once

#include <cstdint>
#include <cstdlib>

#include "net/fault.hpp"

namespace phish::testing {

/// Intensity knobs for the plan generator.  Defaults are calibrated so that
/// every runtime's retry budgets can always win: faults slow a job down but
/// never make success improbable.
struct ChaosProfile {
  /// Worker indices eligible for node events are [1, workers).  Index 0 is
  /// never crashed: it models the submitting workstation, which sources the
  /// root task and (as in the paper's usage) outlives the job.
  int workers = 4;
  // Per-link fault probabilities are drawn uniformly from [0, max_*].
  double max_drop = 0.15;
  double max_duplicate = 0.10;
  double max_reorder = 0.10;
  double max_delay = 0.10;
  std::uint64_t max_extra_delay_ns = 20'000'000;  // 20 ms
  // Each plan draws ONE node-event category — crashes, reclaims, or a
  // transient partition — or none (see make_chaos_plan for why mixing
  // categories composes unsurvivable failure modes); the counts below cap
  // the chosen category.  Set one to 0 to exclude that category.
  int max_crashes = 1;
  int max_reclaims = 1;
  int max_partitions = 1;
  /// Crash / reclaim events fire in [min_event_ns, event_horizon_ns].
  std::uint64_t min_event_ns = 20'000'000;        // 20 ms
  std::uint64_t event_horizon_ns = 500'000'000;   // 500 ms
  /// A partition window runs [0, 40ms + U(0, max_partition_ns)]: it must
  /// start before the victim can hold work, and must end well under the
  /// failure detector's heartbeat timeout or the cut becomes a false death.
  std::uint64_t max_partition_ns = 300'000'000;   // 300 ms
  /// Generate node events at all (off for runtimes without a virtual clock).
  bool node_events = true;
  // Control-plane failover categories.  When set, the category draw may
  // also pick:
  //   * a coordinator crash (NodeEvent.worker == net::kCoordinatorWorker,
  //     kind kCrash) — the runner must stand up a warm-standby replica or
  //     the job cannot finish;
  //   * a crash-then-rejoin pair on one worker (kCrash, then kRestart after
  //     100ms + U(0, max_rejoin_delay_ns)): the dead worker re-registers
  //     into the running job as a fresh incarnation.
  bool coordinator_crash = false;
  bool crash_rejoin = false;
  std::uint64_t max_rejoin_delay_ns = 400'000'000;  // 400 ms
  // Post-migration fault compositions.  Both ride on the migration
  // durability ledger (the Clearinghouse re-registers handed-off cargo and
  // redelivers it when the holder dies); before that ledger existed these
  // were the two documented-unsurvivable rows of the failure matrix.
  //   * reclaim_then_crash — category 6: an owner return at t, then a crash
  //     of a DIFFERENT worker at t + U(0, reclaim_crash_gap_ns).  The crash
  //     can land on the migration successor, whose inherited closures appear
  //     in no steal ledger — only the coordinator's migration ledger can
  //     redo.
  //   * migrate_midflight_crash — category 7: an owner return at t, then a
  //     crash of the SAME worker at t + U(0, midflight_crash_gap_ns):
  //     mid-handshake, between ledger registration, cargo handoff, and
  //     holder confirmation.
  // Size the gaps (and min_event_ns / event_horizon_ns) to the job under
  // test: the reclaim must land while closures are still in flight, and the
  // paired crash soon enough that the successor still holds inherited cargo.
  bool reclaim_then_crash = false;
  bool migrate_midflight_crash = false;
  std::uint64_t reclaim_crash_gap_ns = 100'000'000;   // 100 ms
  std::uint64_t midflight_crash_gap_ns = 20'000'000;  // 20 ms
  /// Restrict the draw to the special categories above (targeted sweeps).
  bool failover_only = false;

  /// Link-faults-only profile for the UDP runtime: milder rates, no node
  /// events, no delay band (real sockets have no scriptable clock).
  static ChaosProfile udp(int workers);
};

/// Expand a seed into a full fault schedule under the given profile.
net::FaultPlan make_chaos_plan(std::uint64_t seed,
                               const ChaosProfile& profile = {});

/// Sustained-churn generator: where make_chaos_plan injects ONE failure
/// category per run, make_churn_plan models a cluster that never sits
/// still.  Leave events arrive as a Poisson process over the whole horizon;
/// each event either takes down one workstation (independent failure /
/// owner return) or an entire rack at once (correlated loss: power strip,
/// top-of-rack switch).  Every downed worker comes back after an
/// exponentially distributed downtime as a kRestart, so the same plan
/// exercises the full crash -> detect -> redo -> rejoin loop continuously.
///
/// The generator tracks per-worker up/down state so events stay valid
/// (nobody crashes twice without rejoining in between), keeps worker 0
/// immune (the submitting workstation, as in ChaosProfile), and never lets
/// live capacity fall below min_live.
struct ChurnProfile {
  int workers = 8;
  /// Events are generated in [min_event_ns, horizon_ns).
  std::uint64_t horizon_ns = 20'000'000'000ULL;  // 20 s
  std::uint64_t min_event_ns = 50'000'000;       // 50 ms startup grace
  /// Aggregate leave-event rate for the whole cluster (Poisson arrivals).
  double churn_rate_hz = 1.0;
  /// Probability that a leave event is a correlated whole-rack loss
  /// instead of a single workstation.  0 = fully independent failures.
  double correlation = 0.0;
  /// Workers per rack (index order: rack r = [r*size, (r+1)*size)).
  int rack_size = 4;
  /// Fraction of single-worker leaves that are owner returns (kReclaim,
  /// migrate-then-depart) rather than crashes.  A reclaim migrates closures
  /// to a random known peer, which under churn may be dead-but-not-yet-
  /// detected; the migration durability ledger makes that survivable (the
  /// handoff is acked, the coordinator redelivers on holder death), so
  /// correctness-gated runs may now enable it.  Rack losses are always
  /// crashes.
  double reclaim_fraction = 0.0;
  /// Crash the active (primary) Clearinghouse once, mid-storm, at a seeded
  /// instant in [min_event_ns, horizon/2) — with NO paired restart.  The
  /// warm standby must promote (epoch-fenced) while workers are dying and
  /// rejoining around it.  Drawn from an independent rng stream, so the
  /// worker-churn schedule is bit-identical with the knob on or off (the
  /// sweep can attribute availability deltas to the primary crash alone).
  /// Only meaningful for runners with a standby replica configured.
  bool primary_churn = false;
  /// Downtime before the kRestart: min + Exp(mean).
  std::uint64_t mean_downtime_ns = 2'000'000'000ULL;  // 2 s
  std::uint64_t min_downtime_ns = 100'000'000;        // 100 ms
  /// Never schedule a leave that would drop live workers below this.
  int min_live = 2;
};

/// Expand a seed into a sustained-churn schedule (node events + rack
/// topology; no link faults — compose with make_chaos_plan's links when
/// both are wanted).
net::FaultPlan make_churn_plan(std::uint64_t seed,
                               const ChurnProfile& profile = {});

/// Seed-replay hook shared by the randomized tests: returns `fallback`
/// unless the named environment variable is set to a (decimal or 0x-hex)
/// integer, in which case every test in the binary runs under that seed.
inline std::uint64_t seed_from_env(const char* var,
                                   std::uint64_t fallback) noexcept {
  const char* text = std::getenv(var);
  if (!text || !*text) return fallback;
  return std::strtoull(text, nullptr, 0);
}

}  // namespace phish::testing
