#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json artifacts to bench/baseline/.

Usage:
    scripts/check_perf_regression.py --fresh <dir> [--baseline bench/baseline]
                                     [--tolerance 0.15]

The gate reads two artifact families:

  BENCH_table1_serial_slowdown.json
      Gated keys: *.slowdown_static, *.slowdown_phish.  These are ratios of
      two timings taken on the same host in the same process, so they cancel
      machine speed and are comparable across hosts.

  BENCH_deque_micro.json
      Gated keys: *.ops_per_calibration_op.  Raw ns/task is machine-bound;
      the artifact divides it by a pure-ALU calibration loop timed in the
      same run, which again cancels machine speed.

For every gated key present in BOTH the baseline and the fresh artifact the
gate requires  fresh <= baseline * (1 + tolerance)  (lower is better for all
gated keys).  Keys present on only one side are reported but do not fail the
gate, so adding a new benchmark row does not require touching the baseline
in the same commit.  Improvements beyond the tolerance are flagged as a
reminder to re-baseline (see bench/baseline/README.md) but do not fail.

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/missing files.
"""

import argparse
import json
import math
import os
import sys

# (artifact file, gated key suffixes)
GATED = [
    ("BENCH_table1_serial_slowdown.json",
     (".slowdown_static", ".slowdown_phish")),
    ("BENCH_deque_micro.json", (".ops_per_calibration_op",)),
]

# Key suffixes that must be present in BOTH artifacts.  The generic rule
# above deliberately lets one-sided keys pass (so adding a bench row does
# not force a same-commit re-baseline), but that leniency would also let a
# load-bearing metric silently vanish — a refactor that drops the
# fine-grain fib row or the concurrent-steal latency would leave the gate
# green while gating nothing.  These keys are the reason the gate exists;
# losing one is a failure, not a warning.
REQUIRED = {
    "BENCH_table1_serial_slowdown.json": (
        "fib(27).slowdown_static",
        "fib(27).slowdown_phish",
    ),
    "BENCH_deque_micro.json": (
        "spawn_execute.ops_per_calibration_op",
        "steal_concurrent.ops_per_calibration_op",
    ),
}

# Presence-only checks on artifacts the gate does not ratio-compare.  When a
# fig4/table2 artifact was produced by a --failures run (its "failures" flag
# is 1), the recovery counters must be in it: a refactor that disconnects the
# RecoveryTracker from those benches would otherwise ship artifacts that look
# complete but no longer measure recovery at all.  Artifacts that are absent
# or were produced without --failures are skipped, not failed.
CONDITIONAL_RECOVERY = {
    "BENCH_fig4_pfold_time.json": (
        ".recovery.detects",
        ".recovery.promotions",
        ".recovery.rejoins",
        ".recovery.mttr_count",
        ".recovery.mttr_ns",
        ".recovery.migration_redo",
    ),
    "BENCH_table2_locality.json": (
        ".recovery.detects",
        ".recovery.promotions",
        ".recovery.rejoins",
        ".recovery.mttr_count",
        ".recovery.mttr_ns",
        ".recovery.migration_redo",
    ),
}


def flatten(obj, prefix=""):
    """Flatten nested JSON objects to {dotted.key: leaf} (lists ignored)."""
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            key = f"{prefix}.{k}" if prefix else k
            out.update(flatten(v, key))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)
    return out


def gated_values(path, suffixes):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    flat = flatten(data)
    return {k: v for k, v in flat.items()
            if k.endswith(suffixes) and not k.startswith("metrics.")}


def check_recovery_presence(directory, side, failures):
    """Require recovery counters in fig4/table2 artifacts from --failures
    runs found under `directory`.  Appends to `failures` in place."""
    for artifact, suffixes in CONDITIONAL_RECOVERY.items():
        path = os.path.join(directory, artifact)
        if not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as f:
            flat = flatten(json.load(f))
        if flat.get("failures") != 1.0:
            continue  # quiet-run artifact: no recovery expected
        for suffix in suffixes:
            if not any(k.endswith(suffix) and not k.startswith("metrics.")
                       for k in flat):
                line = (f"  {artifact}: --failures run but recovery key "
                        f"*{suffix} missing from {side} artifact")
                failures.append(line)
                print("MISSING " + line)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True,
                    help="directory holding freshly generated BENCH_*.json")
    ap.add_argument("--baseline", default="bench/baseline",
                    help="directory holding committed baseline artifacts")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    args = ap.parse_args()

    failures = []
    improvements = []
    compared = 0

    check_recovery_presence(args.baseline, "baseline", failures)
    check_recovery_presence(args.fresh, "fresh", failures)

    for artifact, suffixes in GATED:
        base_path = os.path.join(args.baseline, artifact)
        fresh_path = os.path.join(args.fresh, artifact)
        if not os.path.exists(base_path):
            print(f"error: missing baseline artifact {base_path}")
            return 2
        if not os.path.exists(fresh_path):
            print(f"error: missing fresh artifact {fresh_path} "
                  f"(did the bench binary run?)")
            return 2
        base = gated_values(base_path, suffixes)
        fresh = gated_values(fresh_path, suffixes)
        for suffix in REQUIRED.get(artifact, ()):
            for side, values in (("baseline", base), ("fresh", fresh)):
                if not any(k.endswith(suffix) for k in values):
                    line = (f"  {artifact}: required key *{suffix} missing "
                            f"from {side} artifact")
                    failures.append(line)
                    print("MISSING " + line)
        for key in sorted(set(base) | set(fresh)):
            if key not in base:
                print(f"  new (ungated): {artifact}:{key} = {fresh[key]:.4g}")
                continue
            if key not in fresh:
                print(f"  warning: baseline key {artifact}:{key} absent from "
                      f"fresh artifact")
                continue
            b, f = base[key], fresh[key]
            if not (math.isfinite(b) and math.isfinite(f)) or b <= 0:
                print(f"  warning: non-finite/degenerate pair for {key}: "
                      f"baseline={b} fresh={f}")
                continue
            compared += 1
            ratio = f / b
            line = (f"  {artifact}:{key}: baseline={b:.4g} fresh={f:.4g} "
                    f"({ratio - 1.0:+.1%} vs baseline)")
            if ratio > 1.0 + args.tolerance:
                failures.append(line)
                print("REGRESSION" + line)
            elif ratio < 1.0 - args.tolerance:
                improvements.append(line)
                print("improved " + line)
            else:
                print("ok       " + line)

    if compared == 0:
        print("error: no gated keys compared; baseline and fresh artifacts "
              "share no keys")
        return 2

    if improvements:
        print(f"\n{len(improvements)} metric(s) improved past tolerance; "
              f"consider re-baselining (bench/baseline/README.md).")
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.tolerance:.0%} vs bench/baseline:")
        for line in failures:
            print(line)
        return 1
    print(f"\nOK: {compared} gated metric(s) within {args.tolerance:.0%} of "
          f"baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
