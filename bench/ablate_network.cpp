// Ablation A7 — network quality vs speedup.
//
// The paper's framing: workstation networks have per-message software
// overheads and bisection bandwidth "two orders of magnitude" worse than a
// CM-5, yet a locality-preserving scheduler makes the application largely
// insensitive to that gap.  This bench sweeps the network model from
// CM-5-like to progressively worse-than-Ethernet and reports the
// 8-participant speedup each time.  Because steals/messages are rare, the
// speedup should degrade only at truly terrible parameters.
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "pfold_sweep.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 16));
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 6));
  const int participants = static_cast<int>(flags.get_int("participants", 8));
  reject_unknown_flags(flags);

  banner("Ablation A7", "network quality sweep -> speedup");
  std::printf("pfold polymer=%d cutoff=%d, speedup at P=%d vs the same "
              "network's P=1\n\n",
              polymer, cutoff, participants);

  struct NetCase {
    const char* label;
    const char* key;
    net::SimNetParams params;
  };
  net::SimNetParams lan;  // defaults: the paper's workstation Ethernet
  net::SimNetParams bad = lan;
  bad.send_overhead *= 10;
  bad.recv_overhead *= 10;
  bad.latency *= 10;
  net::SimNetParams awful = lan;
  awful.send_overhead *= 100;
  awful.recv_overhead *= 100;
  awful.latency *= 100;
  const NetCase cases[] = {
      {"CM-5-like interconnect", "cm5", net::SimNetParams::cm5_like()},
      {"1994 Ethernet (paper)", "lan", lan},
      {"10x worse", "bad", bad},
      {"100x worse", "awful", awful},
  };

  TextTable table({"network", "T1 (s)", "T_P avg (s)", "S_P", "messages"});
  for (const NetCase& c : cases) {
    auto run_at = [&](int p) {
      TaskRegistry registry;
      const TaskId root = apps::register_pfold(registry, cutoff);
      rt::SimJobConfig job;
      job.participants = p;
      job.seed = 17;
      job.net = c.params;
      job.clearinghouse.detect_failures = false;
      job.worker.heartbeat_period = 0;
      job.worker.update_period = 0;
      job.max_sim_time = 360'000 * sim::kSecond;
      return rt::run_sim_job(registry, root,
                             {Value(std::int64_t{polymer})}, job);
    };
    const auto r1 = run_at(1);
    const auto rp = run_at(participants);
    const double sp = paper_speedup(r1.participant_seconds[0],
                                    rp.participant_seconds);
    table.add_row({c.label, TextTable::num(r1.participant_seconds[0], 3),
                   TextTable::num(rp.average_participant_seconds, 3),
                   TextTable::num(sp, 2), TextTable::num(rp.messages_sent)});
    kv(std::string("a7.") + c.key + ".speedup", sp);
    kv(std::string("a7.") + c.key + ".messages", rp.messages_sent);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: near-identical speedups on the CM-5-like and "
              "Ethernet networks (the paper's central claim); degradation "
              "appears only when the network is far worse than 1994 "
              "hardware.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
