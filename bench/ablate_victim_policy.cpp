// Ablation A3 — victim selection: uniform random (the paper, with the
// Blumofe–Leiserson theory behind it) vs round-robin vs a fixed victim.
//
// Random selection spreads steal pressure; a fixed victim makes one
// participant a hot-spot that serves every thief while the rest of the
// job's work sits elsewhere.
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 15));
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 5));
  const int participants = static_cast<int>(flags.get_int("participants", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  reject_unknown_flags(flags);

  banner("Ablation A3", "steal victim selection policy");
  std::printf("pfold polymer=%d cutoff=%d, P=%d\n\n", polymer, cutoff,
              participants);

  const struct {
    rt::VictimPolicy policy;
    const char* label;
    const char* key;
  } kPolicies[] = {
      {rt::VictimPolicy::kUniformRandom, "uniform random (paper)", "random"},
      {rt::VictimPolicy::kRoundRobin, "round robin", "rr"},
      {rt::VictimPolicy::kFixedFirst, "fixed first", "fixed"},
  };

  TextTable table({"policy", "avg time (s)", "steal requests",
                   "failed steals", "steals"});
  for (const auto& p : kPolicies) {
    TaskRegistry registry;
    const TaskId root = apps::register_pfold(registry, cutoff);
    rt::SimJobConfig job;
    job.participants = participants;
    job.seed = seed;
    job.clearinghouse.detect_failures = false;
    job.worker.heartbeat_period = 0;
    job.worker.update_period = 0;
    job.worker.victim_policy = p.policy;
    const auto result = rt::run_sim_job(registry, root,
                                        {Value(std::int64_t{polymer})}, job);
    table.add_row({p.label,
                   TextTable::num(result.average_participant_seconds, 3),
                   TextTable::num(result.aggregate.steal_requests_sent),
                   TextTable::num(result.aggregate.failed_steals),
                   TextTable::num(result.aggregate.tasks_stolen_by_me)});
    kv(std::string("a3.") + p.key + ".avg_seconds",
       result.average_participant_seconds);
    kv(std::string("a3.") + p.key + ".failed_steals",
       result.aggregate.failed_steals);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: the fixed victim wastes attempts on one (often "
              "empty) participant; random and round-robin stay close, with "
              "random carrying the theoretical guarantees.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
