// Availability-under-churn sweep — the control plane's SLO artifact
// (DESIGN.md §8, EXPERIMENTS.md "availability vs churn rate").
//
// For each cell of (churn rate × failure correlation), a seeded ChurnPlan
// takes workstations dark and brings them back (Poisson leaves, whole-rack
// correlated losses, exponential downtimes) while an open-loop arrival
// process submits jobs through PhishJobD admission control into a simulated
// Phish pool.  The service runs with the degradation watermark wired to live
// pool capacity, so cells with deep capacity dips exercise 503-shedding and
// self-recovery, not just redo.
//
// Reported per cell (BENCH_availability.json):
//   * availability       time-integral of live/total workstations
//   * work_redone_pct    re-executed tasks as a share of all executed tasks
//   * mttr p50/p99       per-workstation down -> back-up, exact percentiles
//   * rejected_degraded  submissions shed below the capacity watermark
//   * steady_state_ns    when capacity last recovered to the watermark
//
// Conservation gate (the CI churn-smoke leg): at EVERY churn rate, accepted
// == completed + cancelled with completed > 0 and no lost jobs — an accepted
// job is a promise that churn must not break.  Any cell violating it fails
// the run.  Virtual time + seeded plans make every cell deterministic.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/fib/fib.hpp"
#include "bench_util.hpp"
#include "jobsvc/service.hpp"
#include "obs/availability.hpp"
#include "obs/bench_report.hpp"
#include "obs/clock.hpp"
#include "runtime/simdist/macro_service.hpp"
#include "testing/scenario.hpp"
#include "util/rng.hpp"

namespace phish::bench {
namespace {

struct CellParams {
  double churn_hz = 1.0;
  double correlation = 0.0;
};

struct CellResult {
  CellParams params;
  obs::AvailabilityMeter::Report avail;
  jobsvc::JobService::Counters counters;
  std::uint64_t lost_jobs = 0;
  bool conservation_ok = false;
  bool drained = true;
};

struct SweepConfig {
  int workstations = 8;
  int jobs = 40;
  double arrival_hz = 3.0;
  int fib_n = 14;
  double watermark = 0.5;
  std::uint64_t horizon_ns = 30ULL * sim::kSecond;
  std::uint64_t seed = 42;
};

CellResult run_cell(const SweepConfig& sweep, const CellParams& cell) {
  CellResult out;
  out.params = cell;
  obs::Registry::global().reset();

  TaskRegistry registry;
  apps::register_fib(registry, /*sequential_cutoff=*/8);

  // Failure detection ON (unlike the quiet-pool load bench): churned
  // workers must be declared dead and their closures redone.  Timeouts are
  // scaled so detection completes well inside a cell's mean downtime.
  rt::MacroConfig cfg;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1'500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.update_period = 2 * sim::kSecond;
  // No self-termination: a shrink-and-depart migrates closures to a peer,
  // and migrate-then-crash is the one composition the redo ledger does not
  // claim to survive (see ChurnProfile::reclaim_fraction).  Workers here
  // steal until the job's shutdown broadcast; ONLY crashes take work away,
  // which is exactly the covered failure mode the conservation gate checks.
  // (max_failed_steals keeps its effectively-infinite default.)
  //
  // Stretch each job to seconds of virtual time (fib(14) ~ 1.9 s of work at
  // 5 ms/unit): a job must span several churn events, or crashes never
  // catch a worker holding tasks and the redo path goes unmeasured.
  cfg.worker.charge_unit = 5 * sim::kMillisecond;
  cfg.manager.job_poll = 500 * sim::kMillisecond;
  cfg.manager.owner_poll = 200 * sim::kMillisecond;
  cfg.seed = sweep.seed;
  cfg.max_sim_time = 4 * 3'600 * sim::kSecond;
  rt::MacroCluster cluster(registry, cfg);
  for (int i = 0; i < sweep.workstations; ++i) {
    cluster.add_workstation(rt::OwnerTrace::always_idle());
  }

  const obs::VirtualClock<sim::Simulator> clock(cluster.simulator());
  rt::MacroServiceBackend backend(cluster);
  jobsvc::ServiceConfig svc_cfg;
  svc_cfg.max_active = static_cast<std::size_t>(sweep.workstations);
  svc_cfg.max_backlog = 16;
  svc_cfg.degrade_watermark = sweep.watermark;
  svc_cfg.degrade_retry_after_ns = 2ULL * sim::kSecond;
  jobsvc::JobService service(clock, backend, svc_cfg);
  backend.bind(service);
  service.set_capacity_probe([&cluster] {
    return cluster.workstations() > 0
               ? static_cast<double>(cluster.live_workstations()) /
                     static_cast<double>(cluster.workstations())
               : 1.0;
  });

  // The churn schedule: one seed -> one plan; the cell index perturbs the
  // seed so cells fail independently, not in lockstep.
  testing::ChurnProfile churn;
  churn.workers = sweep.workstations;
  churn.horizon_ns = sweep.horizon_ns;
  churn.churn_rate_hz = cell.churn_hz;
  churn.correlation = cell.correlation;
  churn.rack_size = sweep.workstations >= 8 ? 4 : 2;
  churn.mean_downtime_ns = 2ULL * sim::kSecond;
  churn.min_downtime_ns = 200 * sim::kMillisecond;
  churn.min_live = 2;
  const std::uint64_t plan_seed =
      mix64(sweep.seed ^ (0x5ee9ULL + static_cast<std::uint64_t>(
                                          cell.churn_hz * 1000 +
                                          cell.correlation * 17)));
  const net::FaultPlan plan = testing::make_churn_plan(plan_seed, churn);

  obs::AvailabilityMeter meter(sweep.workstations, /*start_ns=*/0);
  for (const net::NodeEvent& e : plan.events) {
    if (e.worker <= 0 || e.worker >= cluster.workstations()) continue;
    bool down = false;
    switch (e.kind) {
      case net::NodeFaultKind::kCrash:
      case net::NodeFaultKind::kReclaim:
        down = true;
        break;
      case net::NodeFaultKind::kRestart:
        down = false;
        break;
      default:
        continue;  // partitions/heals are not machine churn
    }
    cluster.simulator().schedule_at(
        e.at_ns, [&cluster, &meter, w = e.worker, down] {
          cluster.set_workstation_offline(w, down);
          const auto now = cluster.simulator().now();
          if (down) {
            meter.node_down(static_cast<std::uint64_t>(w), now);
          } else {
            meter.node_up(static_cast<std::uint64_t>(w), now);
          }
        });
  }

  // Open-loop arrivals: exponential interarrival at the offered rate,
  // starting after 1 s of quiet pool.
  Xoshiro256 rng(mix64(sweep.seed ^ 0xa331'7a15ULL));
  sim::SimTime at = sim::kSecond;
  sim::SimTime last_arrival = at;
  for (int i = 0; i < sweep.jobs; ++i) {
    cluster.simulator().schedule_at(at, [&service, &sweep] {
      jobsvc::SubmitRequest req;
      req.root_task = "fib.task";
      req.args.emplace_back(static_cast<std::int64_t>(sweep.fib_n));
      service.submit(std::move(req));
    });
    last_arrival = at;
    const double u = rng.uniform();
    at += static_cast<sim::SimTime>(-std::log(u > 1e-12 ? u : 1e-12) /
                                    sweep.arrival_hz * sim::kSecond);
  }

  // Run until the service drains (all arrivals fired, nothing in flight).
  for (;;) {
    cluster.run_until(cluster.simulator().now() + sim::kSecond);
    if (cluster.simulator().now() > cfg.max_sim_time) {
      out.drained = false;
      break;
    }
    if (cluster.simulator().now() > last_arrival &&
        service.pending_jobs() == 0 && service.active_jobs() == 0) {
      break;
    }
  }
  cluster.run_until(cluster.simulator().now() + 5 * sim::kSecond);

  out.counters = service.counters();
  const WorkerStats work = cluster.aggregate_worker_stats();
  const std::uint64_t redone = work.tasks_redone;
  const std::uint64_t useful =
      work.tasks_executed > redone ? work.tasks_executed - redone : 0;
  const std::uint64_t settled = out.counters.completed + out.counters.cancelled;
  out.lost_jobs =
      out.counters.accepted > settled ? out.counters.accepted - settled : 0;
  meter.record_work(useful, redone, out.lost_jobs);
  out.avail = meter.finish(cluster.simulator().now(), sweep.watermark);
  out.conservation_ok = out.drained && out.counters.completed > 0 &&
                        out.counters.accepted == settled;
  return out;
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  SweepConfig sweep;
  sweep.workstations = static_cast<int>(flags.get_int("workstations", 8));
  sweep.jobs = static_cast<int>(flags.get_int("jobs", smoke ? 12 : 40));
  sweep.arrival_hz = flags.get_double("rate", 3.0);
  sweep.fib_n = static_cast<int>(flags.get_int("fib", 14));
  sweep.watermark = flags.get_double("watermark", 0.5);
  sweep.horizon_ns = static_cast<std::uint64_t>(
      flags.get_int("horizon-s", smoke ? 10 : 30)) * sim::kSecond;
  sweep.seed = static_cast<std::uint64_t>(flags.get_int(
      "seed", static_cast<std::int64_t>(
                  testing::seed_from_env("PHISH_TEST_SEED", 42))));
  reject_unknown_flags(flags);

  banner("availability", "sustained-churn sweep: churn rate x correlation "
                         "(virtual time)");
  std::printf("%d workstations, %d jobs/cell at %.1f jobs/s, fib(%d), "
              "watermark %.2f, churn horizon %llu s, seed %llu\n\n",
              sweep.workstations, sweep.jobs, sweep.arrival_hz, sweep.fib_n,
              sweep.watermark,
              (unsigned long long)(sweep.horizon_ns / sim::kSecond),
              (unsigned long long)sweep.seed);

  std::vector<CellParams> cells;
  if (smoke) {
    cells = {{2.0, 0.0}, {2.0, 0.5}};
  } else {
    for (double hz : {0.5, 1.0, 2.0, 4.0}) {
      for (double corr : {0.0, 0.5}) cells.push_back({hz, corr});
    }
  }

  TextTable table({"churn/s", "corr", "avail", "redone%", "mttr p50 (s)",
                   "mttr p99 (s)", "accepted", "completed", "shed",
                   "conserved"});
  std::vector<CellResult> results;
  bool all_ok = true;
  for (const CellParams& cell : cells) {
    const CellResult r = run_cell(sweep, cell);
    results.push_back(r);
    all_ok = all_ok && r.conservation_ok;
    table.add_row({TextTable::num(r.params.churn_hz, 1),
                   TextTable::num(r.params.correlation, 1),
                   TextTable::num(r.avail.availability, 4),
                   TextTable::num(r.avail.work_redone_pct, 2),
                   TextTable::num(static_cast<double>(r.avail.mttr_p50_ns) /
                                      1e9, 2),
                   TextTable::num(static_cast<double>(r.avail.mttr_p99_ns) /
                                      1e9, 2),
                   TextTable::num(static_cast<std::int64_t>(
                       r.counters.accepted)),
                   TextTable::num(static_cast<std::int64_t>(
                       r.counters.completed)),
                   TextTable::num(static_cast<std::int64_t>(
                       r.counters.rejected_degraded)),
                   r.conservation_ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  double min_avail = 1.0, max_redone = 0.0;
  for (const CellResult& r : results) {
    min_avail = std::min(min_avail, r.avail.availability);
    max_redone = std::max(max_redone, r.avail.work_redone_pct);
  }
  kv("cells", static_cast<std::uint64_t>(results.size()));
  kv("availability_min", min_avail);
  kv("work_redone_pct_max", max_redone);
  kv("conservation_ok", std::string(all_ok ? "true" : "false"));

  obs::BenchReport report("availability");
  report.set("workstations", sweep.workstations);
  report.set("jobs_per_cell", sweep.jobs);
  report.set("arrival_hz", sweep.arrival_hz);
  report.set("watermark", sweep.watermark);
  report.set("horizon_s",
             static_cast<std::uint64_t>(sweep.horizon_ns / sim::kSecond));
  report.set("seed", sweep.seed);
  report.set("cells", static_cast<std::uint64_t>(results.size()));
  report.set("availability_min", min_avail);
  report.set("work_redone_pct_max", max_redone);
  report.set("conservation_ok", all_ok);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    const std::string p = "c" + std::to_string(i) + "_";
    report.set(p + "churn_hz", r.params.churn_hz);
    report.set(p + "correlation", r.params.correlation);
    report.set(p + "availability", r.avail.availability);
    report.set(p + "work_redone_pct", r.avail.work_redone_pct);
    report.set(p + "mttr_count", r.avail.mttr_count);
    report.set(p + "mttr_p50_ns", r.avail.mttr_p50_ns);
    report.set(p + "mttr_p99_ns", r.avail.mttr_p99_ns);
    report.set(p + "downs", r.avail.downs);
    report.set(p + "steady_state_ns", r.avail.steady_state_ns);
    report.set(p + "steady", r.avail.steady);
    report.set(p + "submitted", r.counters.submitted);
    report.set(p + "accepted", r.counters.accepted);
    report.set(p + "completed", r.counters.completed);
    report.set(p + "cancelled", r.counters.cancelled);
    report.set(p + "rejected_degraded", r.counters.rejected_degraded);
    report.set(p + "lost_jobs", r.lost_jobs);
    report.set(p + "conservation_ok", r.conservation_ok);
  }
  report.write();

  if (!all_ok) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CellResult& r = results[i];
      if (r.conservation_ok) continue;
      std::printf("FAILED cell %zu (churn %.1f/s corr %.1f): %s — "
                  "accepted %llu vs completed %llu + cancelled %llu "
                  "(lost %llu)\n",
                  i, r.params.churn_hz, r.params.correlation,
                  r.drained ? "job conservation violated"
                            : "did not drain before the time cap",
                  (unsigned long long)r.counters.accepted,
                  (unsigned long long)r.counters.completed,
                  (unsigned long long)r.counters.cancelled,
                  (unsigned long long)r.lost_jobs);
    }
    std::printf("replay: PHISH_TEST_SEED=%llu churn_sweep%s\n",
                (unsigned long long)sweep.seed, smoke ? " --smoke=true" : "");
    return 1;
  }
  std::printf("OK: job conservation held in all %zu cells\n", results.size());
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
