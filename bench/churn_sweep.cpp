// Availability-under-churn sweep — the control plane's SLO artifact
// (DESIGN.md §8, EXPERIMENTS.md "availability vs churn rate").
//
// For each cell of (churn rate × failure correlation), a seeded ChurnPlan
// takes workstations dark and brings them back (Poisson leaves, whole-rack
// correlated losses, exponential downtimes) while an open-loop arrival
// process submits jobs through PhishJobD admission control into a simulated
// Phish pool.  The service runs with the degradation watermark wired to live
// pool capacity, so cells with deep capacity dips exercise 503-shedding and
// self-recovery, not just redo.
//
// Reported per cell (BENCH_availability.json):
//   * availability       time-integral of live/total workstations
//   * work_redone_pct    re-executed tasks as a share of all executed tasks
//   * mttr p50/p99       per-workstation down -> back-up, exact percentiles
//   * rejected_degraded  submissions shed below the capacity watermark
//   * steady_state_ns    when capacity last recovered to the watermark
//
// Conservation gate (the CI churn-smoke leg): at EVERY churn rate, accepted
// == completed + cancelled with completed > 0 and no lost jobs — an accepted
// job is a promise that churn must not break.  Any cell violating it fails
// the run.  Virtual time + seeded plans make every cell deterministic.
//
// A second section sweeps the *runtime parity* cells: the same seeded churn
// plan (owner reclaims mixed in, optionally a one-shot primary crash) driven
// through a single long job on the simdist runtime (virtual time) and on the
// UDP runtime (real sockets, wall clock).  The gate there is job-level
// conservation: the answer must equal the fault-free serial reference, with
// the redo / migration / promotion counters showing the machinery engaged.
//
// --runtime=simdist|udp restricts the run to that runtime's parity cells
// (skipping the jobsvc grid) — the CI UDP churn-smoke leg uses
// `--smoke=true --runtime=udp` to gate real-socket churn on ephemeral ports
// without paying for the virtual-time sweep.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/fib/fib.hpp"
#include "bench_util.hpp"
#include "jobsvc/service.hpp"
#include "obs/availability.hpp"
#include "obs/bench_report.hpp"
#include "obs/clock.hpp"
#include "runtime/simdist/macro_service.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "runtime/udp/udp_runtime.hpp"
#include "testing/scenario.hpp"
#include "util/rng.hpp"

namespace phish::bench {
namespace {

struct CellParams {
  double churn_hz = 1.0;
  double correlation = 0.0;
};

struct CellResult {
  CellParams params;
  obs::AvailabilityMeter::Report avail;
  jobsvc::JobService::Counters counters;
  std::uint64_t lost_jobs = 0;
  bool conservation_ok = false;
  bool drained = true;
};

struct SweepConfig {
  int workstations = 8;
  int jobs = 40;
  double arrival_hz = 3.0;
  int fib_n = 14;
  double watermark = 0.5;
  std::uint64_t horizon_ns = 30ULL * sim::kSecond;
  std::uint64_t seed = 42;
};

CellResult run_cell(const SweepConfig& sweep, const CellParams& cell) {
  CellResult out;
  out.params = cell;
  obs::Registry::global().reset();

  TaskRegistry registry;
  apps::register_fib(registry, /*sequential_cutoff=*/8);

  // Failure detection ON (unlike the quiet-pool load bench): churned
  // workers must be declared dead and their closures redone.  Timeouts are
  // scaled so detection completes well inside a cell's mean downtime.
  rt::MacroConfig cfg;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1'500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.update_period = 2 * sim::kSecond;
  // No self-termination: a shrink-and-depart migrates closures to a peer,
  // and migrate-then-crash is the one composition the redo ledger does not
  // claim to survive (see ChurnProfile::reclaim_fraction).  Workers here
  // steal until the job's shutdown broadcast; ONLY crashes take work away,
  // which is exactly the covered failure mode the conservation gate checks.
  // (max_failed_steals keeps its effectively-infinite default.)
  //
  // Stretch each job to seconds of virtual time (fib(14) ~ 1.9 s of work at
  // 5 ms/unit): a job must span several churn events, or crashes never
  // catch a worker holding tasks and the redo path goes unmeasured.
  cfg.worker.charge_unit = 5 * sim::kMillisecond;
  cfg.manager.job_poll = 500 * sim::kMillisecond;
  cfg.manager.owner_poll = 200 * sim::kMillisecond;
  cfg.seed = sweep.seed;
  cfg.max_sim_time = 4 * 3'600 * sim::kSecond;
  rt::MacroCluster cluster(registry, cfg);
  for (int i = 0; i < sweep.workstations; ++i) {
    cluster.add_workstation(rt::OwnerTrace::always_idle());
  }

  const obs::VirtualClock<sim::Simulator> clock(cluster.simulator());
  rt::MacroServiceBackend backend(cluster);
  jobsvc::ServiceConfig svc_cfg;
  svc_cfg.max_active = static_cast<std::size_t>(sweep.workstations);
  svc_cfg.max_backlog = 16;
  svc_cfg.degrade_watermark = sweep.watermark;
  svc_cfg.degrade_retry_after_ns = 2ULL * sim::kSecond;
  jobsvc::JobService service(clock, backend, svc_cfg);
  backend.bind(service);
  service.set_capacity_probe([&cluster] {
    return cluster.workstations() > 0
               ? static_cast<double>(cluster.live_workstations()) /
                     static_cast<double>(cluster.workstations())
               : 1.0;
  });

  // The churn schedule: one seed -> one plan; the cell index perturbs the
  // seed so cells fail independently, not in lockstep.
  testing::ChurnProfile churn;
  churn.workers = sweep.workstations;
  churn.horizon_ns = sweep.horizon_ns;
  churn.churn_rate_hz = cell.churn_hz;
  churn.correlation = cell.correlation;
  churn.rack_size = sweep.workstations >= 8 ? 4 : 2;
  churn.mean_downtime_ns = 2ULL * sim::kSecond;
  churn.min_downtime_ns = 200 * sim::kMillisecond;
  churn.min_live = 2;
  const std::uint64_t plan_seed =
      mix64(sweep.seed ^ (0x5ee9ULL + static_cast<std::uint64_t>(
                                          cell.churn_hz * 1000 +
                                          cell.correlation * 17)));
  const net::FaultPlan plan = testing::make_churn_plan(plan_seed, churn);

  obs::AvailabilityMeter meter(sweep.workstations, /*start_ns=*/0);
  for (const net::NodeEvent& e : plan.events) {
    if (e.worker <= 0 || e.worker >= cluster.workstations()) continue;
    bool down = false;
    switch (e.kind) {
      case net::NodeFaultKind::kCrash:
      case net::NodeFaultKind::kReclaim:
        down = true;
        break;
      case net::NodeFaultKind::kRestart:
        down = false;
        break;
      default:
        continue;  // partitions/heals are not machine churn
    }
    cluster.simulator().schedule_at(
        e.at_ns, [&cluster, &meter, w = e.worker, down] {
          cluster.set_workstation_offline(w, down);
          const auto now = cluster.simulator().now();
          if (down) {
            meter.node_down(static_cast<std::uint64_t>(w), now);
          } else {
            meter.node_up(static_cast<std::uint64_t>(w), now);
          }
        });
  }

  // Open-loop arrivals: exponential interarrival at the offered rate,
  // starting after 1 s of quiet pool.
  Xoshiro256 rng(mix64(sweep.seed ^ 0xa331'7a15ULL));
  sim::SimTime at = sim::kSecond;
  sim::SimTime last_arrival = at;
  for (int i = 0; i < sweep.jobs; ++i) {
    cluster.simulator().schedule_at(at, [&service, &sweep] {
      jobsvc::SubmitRequest req;
      req.root_task = "fib.task";
      req.args.emplace_back(static_cast<std::int64_t>(sweep.fib_n));
      service.submit(std::move(req));
    });
    last_arrival = at;
    const double u = rng.uniform();
    at += static_cast<sim::SimTime>(-std::log(u > 1e-12 ? u : 1e-12) /
                                    sweep.arrival_hz * sim::kSecond);
  }

  // Run until the service drains (all arrivals fired, nothing in flight).
  for (;;) {
    cluster.run_until(cluster.simulator().now() + sim::kSecond);
    if (cluster.simulator().now() > cfg.max_sim_time) {
      out.drained = false;
      break;
    }
    if (cluster.simulator().now() > last_arrival &&
        service.pending_jobs() == 0 && service.active_jobs() == 0) {
      break;
    }
  }
  cluster.run_until(cluster.simulator().now() + 5 * sim::kSecond);

  out.counters = service.counters();
  const WorkerStats work = cluster.aggregate_worker_stats();
  const std::uint64_t redone = work.tasks_redone;
  const std::uint64_t useful =
      work.tasks_executed > redone ? work.tasks_executed - redone : 0;
  const std::uint64_t settled = out.counters.completed + out.counters.cancelled;
  out.lost_jobs =
      out.counters.accepted > settled ? out.counters.accepted - settled : 0;
  meter.record_work(useful, redone, out.lost_jobs);
  out.avail = meter.finish(cluster.simulator().now(), sweep.watermark);
  out.conservation_ok = out.drained && out.counters.completed > 0 &&
                        out.counters.accepted == settled;
  return out;
}

// ---- Runtime-parity cells: one long job under the same churn taxonomy. --

struct RuntimeCell {
  const char* runtime = "simdist";  // "simdist" | "udp"
  double churn_hz = 2.0;
  double reclaim_fraction = 0.0;
  bool primary_churn = false;
};

struct RuntimeCellResult {
  RuntimeCell cell;
  bool completed = false;  // job finished before the watchdog/time cap
  bool exact = false;      // answer == fault-free serial reference
  std::uint64_t tasks_redone = 0;
  std::uint64_t tasks_migrated_out = 0;
  std::uint64_t migration_redo = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t detects = 0;
};

std::int64_t fib_iterative(int n) {
  std::int64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::int64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

std::uint64_t runtime_cell_seed(const SweepConfig& sweep,
                                const RuntimeCell& cell) {
  return mix64(sweep.seed ^ 0x51d1'57eeULL ^
               static_cast<std::uint64_t>(cell.churn_hz * 1000) ^
               static_cast<std::uint64_t>(cell.reclaim_fraction * 97) ^
               (cell.primary_churn ? 0x9e1aULL : 0));
}

/// Virtual time: pfold(13) stretched over an 8 s churn horizon, owner
/// reclaims drained through the acked migration handshake, optional
/// epoch-fenced standby promotion mid-storm.
RuntimeCellResult run_runtime_cell_simdist(const SweepConfig& sweep,
                                           const RuntimeCell& cell) {
  RuntimeCellResult out;
  out.cell = cell;
  testing::ChurnProfile profile;
  profile.workers = 6;
  profile.horizon_ns = 8 * sim::kSecond;
  profile.churn_rate_hz = cell.churn_hz;
  profile.correlation = 0.2;
  profile.rack_size = 2;
  profile.mean_downtime_ns = 1 * sim::kSecond;
  profile.min_downtime_ns = 200 * sim::kMillisecond;
  profile.min_live = 2;
  profile.reclaim_fraction = cell.reclaim_fraction;
  profile.primary_churn = cell.primary_churn;
  const net::FaultPlan plan =
      testing::make_churn_plan(runtime_cell_seed(sweep, cell), profile);

  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimJobConfig cfg;
  cfg.participants = profile.workers;
  cfg.seed = sweep.seed;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1'500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  cfg.worker.charge_unit = 2 * sim::kMillisecond;  // span the churn horizon
  cfg.enable_backup = cell.primary_churn;
  try {
    rt::SimCluster cluster(reg, cfg);
    cluster.apply_fault_plan(plan);
    const auto result = cluster.run(root, {Value(std::int64_t{13})});
    out.completed = true;
    out.exact = apps::decode_histogram(result.value.as_blob()) ==
                apps::pfold_serial(13);
    out.tasks_redone = result.aggregate.tasks_redone;
    out.tasks_migrated_out = result.aggregate.tasks_migrated_out;
    const auto rec = cluster.recovery().snapshot();
    out.migration_redo = rec.migration_redo;
    out.promotions = rec.promotions;
    out.rejoins = rec.rejoins;
    out.detects = rec.detects;
  } catch (const std::exception& e) {
    std::printf("  simdist runtime cell failed: %s\n", e.what());
  }
  return out;
}

/// Real sockets, wall clock: the same churn plan class (reclaims evict
/// gracefully through the acked ledger handshake; a primary crash halts the
/// coordinator and the warm standby promotes) over a fib job sized to span
/// the 2 s storm.
RuntimeCellResult run_runtime_cell_udp(const SweepConfig& sweep,
                                       const RuntimeCell& cell) {
  RuntimeCellResult out;
  out.cell = cell;
  testing::ChurnProfile profile;
  profile.workers = 4;
  profile.horizon_ns = 2'000'000'000ULL;  // wall-clock ns from job start
  profile.min_event_ns = 400'000'000ULL;
  profile.churn_rate_hz = cell.churn_hz;
  profile.correlation = 0.0;  // no scriptable rack cut on real sockets
  profile.rack_size = 2;
  profile.mean_downtime_ns = 800'000'000ULL;
  profile.min_downtime_ns = 300'000'000ULL;
  profile.min_live = 2;
  profile.reclaim_fraction = cell.reclaim_fraction;
  profile.primary_churn = cell.primary_churn;
  const net::FaultPlan plan =
      testing::make_churn_plan(runtime_cell_seed(sweep, cell), profile);

  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg;
  cfg.workers = profile.workers;
  cfg.net.base_port = 0;  // ephemeral: no collisions with parallel runs
  cfg.seed = sweep.seed;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1'200'000'000ULL;
  cfg.clearinghouse.failure_check_period_ns = 250'000'000ULL;
  cfg.heartbeat_period_ns = 100'000'000ULL;
  if (cell.primary_churn) {
    cfg.enable_backup = true;
    cfg.clearinghouse.replicate_period_ns = 100'000'000ULL;
    cfg.clearinghouse.lease_timeout_ns = 400'000'000ULL;
    cfg.clearinghouse.lease_check_period_ns = 100'000'000ULL;
  }
  cfg.timeout_seconds = 90.0;
  cfg.node_events = plan.events;
  try {
    rt::UdpJob job(reg, cfg);
    const auto result = job.run(root, {Value(std::int64_t{45})});
    out.completed = true;
    out.exact = result.value.as_int() == fib_iterative(45);
    out.tasks_redone = result.aggregate.tasks_redone;
    out.tasks_migrated_out = result.aggregate.tasks_migrated_out;
    out.migration_redo = result.recovery.migration_redo;
    out.promotions = result.recovery.promotions;
    out.rejoins = result.recovery.rejoins;
    out.detects = result.recovery.detects;
  } catch (const std::exception& e) {
    std::printf("  udp runtime cell failed: %s\n", e.what());
  }
  return out;
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  SweepConfig sweep;
  sweep.workstations = static_cast<int>(flags.get_int("workstations", 8));
  sweep.jobs = static_cast<int>(flags.get_int("jobs", smoke ? 12 : 40));
  sweep.arrival_hz = flags.get_double("rate", 3.0);
  sweep.fib_n = static_cast<int>(flags.get_int("fib", 14));
  sweep.watermark = flags.get_double("watermark", 0.5);
  sweep.horizon_ns = static_cast<std::uint64_t>(
      flags.get_int("horizon-s", smoke ? 10 : 30)) * sim::kSecond;
  sweep.seed = static_cast<std::uint64_t>(flags.get_int(
      "seed", static_cast<std::int64_t>(
                  testing::seed_from_env("PHISH_TEST_SEED", 42))));
  const std::string runtime_filter = flags.get_string("runtime", "all");
  reject_unknown_flags(flags);
  if (runtime_filter != "all" && runtime_filter != "simdist" &&
      runtime_filter != "udp") {
    std::fprintf(stderr, "churn_sweep: --runtime must be all|simdist|udp\n");
    return 2;
  }

  banner("availability", "sustained-churn sweep: churn rate x correlation "
                         "(virtual time)");
  std::printf("%d workstations, %d jobs/cell at %.1f jobs/s, fib(%d), "
              "watermark %.2f, churn horizon %llu s, seed %llu\n\n",
              sweep.workstations, sweep.jobs, sweep.arrival_hz, sweep.fib_n,
              sweep.watermark,
              (unsigned long long)(sweep.horizon_ns / sim::kSecond),
              (unsigned long long)sweep.seed);

  std::vector<CellParams> cells;
  if (runtime_filter != "all") {
    // Runtime-focused run: only the parity cells below, not the jobsvc grid.
  } else if (smoke) {
    cells = {{2.0, 0.0}, {2.0, 0.5}};
  } else {
    for (double hz : {0.5, 1.0, 2.0, 4.0}) {
      for (double corr : {0.0, 0.5}) cells.push_back({hz, corr});
    }
  }

  TextTable table({"churn/s", "corr", "avail", "redone%", "mttr p50 (s)",
                   "mttr p99 (s)", "accepted", "completed", "shed",
                   "conserved"});
  std::vector<CellResult> results;
  bool all_ok = true;
  for (const CellParams& cell : cells) {
    const CellResult r = run_cell(sweep, cell);
    results.push_back(r);
    all_ok = all_ok && r.conservation_ok;
    table.add_row({TextTable::num(r.params.churn_hz, 1),
                   TextTable::num(r.params.correlation, 1),
                   TextTable::num(r.avail.availability, 4),
                   TextTable::num(r.avail.work_redone_pct, 2),
                   TextTable::num(static_cast<double>(r.avail.mttr_p50_ns) /
                                      1e9, 2),
                   TextTable::num(static_cast<double>(r.avail.mttr_p99_ns) /
                                      1e9, 2),
                   TextTable::num(static_cast<std::int64_t>(
                       r.counters.accepted)),
                   TextTable::num(static_cast<std::int64_t>(
                       r.counters.completed)),
                   TextTable::num(static_cast<std::int64_t>(
                       r.counters.rejected_degraded)),
                   r.conservation_ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Runtime-parity cells: reclaim churn and primary churn, simdist vs UDP.
  std::vector<RuntimeCell> rt_cells;
  if (runtime_filter == "udp") {
    rt_cells = {{"udp", 2.0, 0.6, false}, {"udp", 2.0, 0.6, true}};
  } else if (runtime_filter == "simdist") {
    rt_cells = {{"simdist", 2.0, 0.0, false},
                {"simdist", 2.0, 0.6, false},
                {"simdist", 2.0, 0.6, true}};
  } else if (smoke) {
    rt_cells = {{"simdist", 2.0, 0.6, false}, {"udp", 2.0, 0.6, false}};
  } else {
    rt_cells = {{"simdist", 2.0, 0.0, false},
                {"simdist", 2.0, 0.6, false},
                {"simdist", 2.0, 0.6, true},
                {"udp", 2.0, 0.6, false},
                {"udp", 2.0, 0.6, true}};
  }
  TextTable rt_table({"runtime", "churn/s", "reclaim", "primary", "exact",
                      "redone", "migrated", "mig_redo", "promos", "rejoins"});
  std::vector<RuntimeCellResult> rt_results;
  for (const RuntimeCell& cell : rt_cells) {
    const RuntimeCellResult r = std::string(cell.runtime) == "udp"
                                    ? run_runtime_cell_udp(sweep, cell)
                                    : run_runtime_cell_simdist(sweep, cell);
    rt_results.push_back(r);
    all_ok = all_ok && r.completed && r.exact;
    rt_table.add_row({r.cell.runtime, TextTable::num(r.cell.churn_hz, 1),
                      TextTable::num(r.cell.reclaim_fraction, 1),
                      r.cell.primary_churn ? "yes" : "no",
                      r.exact ? "yes" : "NO",
                      TextTable::num(static_cast<std::int64_t>(r.tasks_redone)),
                      TextTable::num(static_cast<std::int64_t>(
                          r.tasks_migrated_out)),
                      TextTable::num(static_cast<std::int64_t>(
                          r.migration_redo)),
                      TextTable::num(static_cast<std::int64_t>(r.promotions)),
                      TextTable::num(static_cast<std::int64_t>(r.rejoins))});
  }
  std::printf("runtime parity (single job under the same churn taxonomy):\n");
  std::printf("%s\n", rt_table.to_string().c_str());

  double min_avail = 1.0, max_redone = 0.0;
  for (const CellResult& r : results) {
    min_avail = std::min(min_avail, r.avail.availability);
    max_redone = std::max(max_redone, r.avail.work_redone_pct);
  }
  kv("cells", static_cast<std::uint64_t>(results.size()));
  kv("availability_min", min_avail);
  kv("work_redone_pct_max", max_redone);
  kv("conservation_ok", std::string(all_ok ? "true" : "false"));

  obs::BenchReport report("availability");
  report.set("workstations", sweep.workstations);
  report.set("jobs_per_cell", sweep.jobs);
  report.set("arrival_hz", sweep.arrival_hz);
  report.set("watermark", sweep.watermark);
  report.set("horizon_s",
             static_cast<std::uint64_t>(sweep.horizon_ns / sim::kSecond));
  report.set("seed", sweep.seed);
  report.set("runtime_filter", runtime_filter);
  report.set("cells", static_cast<std::uint64_t>(results.size()));
  report.set("availability_min", min_avail);
  report.set("work_redone_pct_max", max_redone);
  report.set("conservation_ok", all_ok);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    const std::string p = "c" + std::to_string(i) + "_";
    report.set(p + "churn_hz", r.params.churn_hz);
    report.set(p + "correlation", r.params.correlation);
    report.set(p + "availability", r.avail.availability);
    report.set(p + "work_redone_pct", r.avail.work_redone_pct);
    report.set(p + "mttr_count", r.avail.mttr_count);
    report.set(p + "mttr_p50_ns", r.avail.mttr_p50_ns);
    report.set(p + "mttr_p99_ns", r.avail.mttr_p99_ns);
    report.set(p + "downs", r.avail.downs);
    report.set(p + "steady_state_ns", r.avail.steady_state_ns);
    report.set(p + "steady", r.avail.steady);
    report.set(p + "submitted", r.counters.submitted);
    report.set(p + "accepted", r.counters.accepted);
    report.set(p + "completed", r.counters.completed);
    report.set(p + "cancelled", r.counters.cancelled);
    report.set(p + "rejected_degraded", r.counters.rejected_degraded);
    report.set(p + "lost_jobs", r.lost_jobs);
    report.set(p + "conservation_ok", r.conservation_ok);
  }
  for (std::size_t i = 0; i < rt_results.size(); ++i) {
    const RuntimeCellResult& r = rt_results[i];
    const std::string p =
        "rt_" + std::string(r.cell.runtime) + std::to_string(i) + "_";
    report.set(p + "churn_hz", r.cell.churn_hz);
    report.set(p + "reclaim_fraction", r.cell.reclaim_fraction);
    report.set(p + "primary_churn", r.cell.primary_churn);
    report.set(p + "completed", r.completed);
    report.set(p + "exact", r.exact);
    report.set(p + "tasks_redone", r.tasks_redone);
    report.set(p + "tasks_migrated_out", r.tasks_migrated_out);
    report.set(p + "migration_redo", r.migration_redo);
    report.set(p + "promotions", r.promotions);
    report.set(p + "rejoins", r.rejoins);
    report.set(p + "detects", r.detects);
  }
  report.write();

  if (!all_ok) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CellResult& r = results[i];
      if (r.conservation_ok) continue;
      std::printf("FAILED cell %zu (churn %.1f/s corr %.1f): %s — "
                  "accepted %llu vs completed %llu + cancelled %llu "
                  "(lost %llu)\n",
                  i, r.params.churn_hz, r.params.correlation,
                  r.drained ? "job conservation violated"
                            : "did not drain before the time cap",
                  (unsigned long long)r.counters.accepted,
                  (unsigned long long)r.counters.completed,
                  (unsigned long long)r.counters.cancelled,
                  (unsigned long long)r.lost_jobs);
    }
    for (std::size_t i = 0; i < rt_results.size(); ++i) {
      const RuntimeCellResult& r = rt_results[i];
      if (r.completed && r.exact) continue;
      std::printf("FAILED runtime cell %zu (%s churn %.1f/s reclaim %.1f "
                  "primary %s): %s\n",
                  i, r.cell.runtime, r.cell.churn_hz,
                  r.cell.reclaim_fraction, r.cell.primary_churn ? "yes" : "no",
                  r.completed ? "answer diverged from serial reference"
                              : "job did not complete");
    }
    std::printf("replay: PHISH_TEST_SEED=%llu churn_sweep%s%s%s\n",
                (unsigned long long)sweep.seed, smoke ? " --smoke=true" : "",
                runtime_filter != "all" ? " --runtime=" : "",
                runtime_filter != "all" ? runtime_filter.c_str() : "");
    return 1;
  }
  std::printf("OK: job conservation held in all %zu jobsvc cells and %zu "
              "runtime cells\n",
              results.size(), rt_results.size());
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
