// Table 2 — message and scheduling statistics for pfold at 4 and 8
// participants.
//
// Paper (pfold on SparcStation 1's):
//
//                         4 participants    8 participants
//     Tasks executed      10,390,216        10,390,216
//     Max tasks in use    59                59
//     Tasks stolen        70                133
//     Synchronizations    10,390,214        10,390,214
//     Non-local synchs    55                122
//     Messages sent       1,598             1,998
//     Execution time      182 sec           94 sec
//
// Shape targets:
//   * tasks executed and synchronizations identical across P (same work);
//   * max tasks in use small and essentially independent of P (LIFO keeps
//     the working set ~ spawn depth);
//   * steals, non-local synchs, and messages orders of magnitude below
//     tasks, growing only mildly with P;
//   * execution time roughly halving from P=4 to P=8.
#include <cstdio>

#include "bench_util.hpp"
#include "pfold_sweep.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const PfoldSweepConfig cfg = sweep_config_from_flags(flags);
  const auto participants = flags.get_int_list("participants", {4, 8});
  reject_unknown_flags(flags);

  banner("Table 2", "pfold message & scheduling statistics");
  std::printf("polymer=%d monomers, grain cutoff=%d\n\n", cfg.polymer,
              cfg.cutoff);

  if (cfg.inject_failures) {
    std::printf("failure injection ON: primary Clearinghouse crash at 500 ms, "
                "worker 1 crash at 300 ms + rejoin at 2 s (P>2), worker 2 "
                "reclaim at 250 ms + rejoin at 2.5 s (P>3)\n\n");
  }

  std::vector<rt::SimJobResult> results;
  std::vector<RecoveryTracker::Snapshot> recoveries;
  std::vector<std::string> header{"statistic"};
  for (std::int64_t p : participants) {
    RecoveryTracker::Snapshot recovery;
    results.push_back(run_pfold_at(cfg, static_cast<int>(p), nullptr,
                                   cfg.inject_failures ? &recovery : nullptr));
    recoveries.push_back(recovery);
    header.push_back(std::to_string(p) + " participants");
  }

  TextTable table(header);
  auto add = [&](const std::string& name,
                 const std::function<std::string(const rt::SimJobResult&)>&
                     get) {
    std::vector<std::string> row{name};
    for (const auto& r : results) row.push_back(get(r));
    table.add_row(std::move(row));
  };
  add("Tasks executed", [](const rt::SimJobResult& r) {
    return TextTable::num(r.aggregate.tasks_executed);
  });
  add("Max tasks in use", [](const rt::SimJobResult& r) {
    return TextTable::num(r.aggregate.max_tasks_in_use);
  });
  add("Tasks stolen", [](const rt::SimJobResult& r) {
    return TextTable::num(r.aggregate.tasks_stolen_by_me);
  });
  add("Synchronizations", [](const rt::SimJobResult& r) {
    return TextTable::num(r.aggregate.synchronizations);
  });
  add("Non-local synchs", [](const rt::SimJobResult& r) {
    return TextTable::num(r.aggregate.non_local_synchs);
  });
  add("Messages sent", [](const rt::SimJobResult& r) {
    return TextTable::num(r.messages_sent);
  });
  add("Execution time", [](const rt::SimJobResult& r) {
    return TextTable::num(r.average_participant_seconds, 2) + " sec";
  });
  std::printf("%s", table.to_string().c_str());

  obs::BenchReport report("table2_locality");
  report.set("runtime", "simdist");
  report.set("seed", cfg.seed);
  report.set("polymer", cfg.polymer);
  report.set("cutoff", cfg.cutoff);
  report.set("failures", cfg.inject_failures ? 1 : 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string prefix =
        "table2.P" + std::to_string(participants[i]) + ".";
    kv(prefix + "tasks", results[i].aggregate.tasks_executed);
    kv(prefix + "max_in_use", results[i].aggregate.max_tasks_in_use);
    kv(prefix + "stolen", results[i].aggregate.tasks_stolen_by_me);
    kv(prefix + "synchs", results[i].aggregate.synchronizations);
    kv(prefix + "non_local_synchs", results[i].aggregate.non_local_synchs);
    kv(prefix + "messages", results[i].messages_sent);
    kv(prefix + "avg_seconds", results[i].average_participant_seconds);
    report_sim_result(report, "P" + std::to_string(participants[i]),
                      results[i]);
    if (cfg.inject_failures) {
      report_recovery(report, "P" + std::to_string(participants[i]),
                      recoveries[i]);
      kv(prefix + "recovery.mttr_ns", recoveries[i].last_mttr_ns);
    }
  }
  report.set_metrics(obs::Registry::global().snapshot());
  report.write();
  std::printf("\npaper: 10.39M tasks, max 59 in use, 70/133 stolen, 55/122 "
              "non-local synchs, 1598/1998 messages, 182/94 sec.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
