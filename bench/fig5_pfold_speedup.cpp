// Figure 5 — speedup of pfold vs number of participants.
//
// Paper: "The P-participant speedup is computed as S_P = P*T_1 / sum_i
// T_P(i), where T_P(i) is the wall-clock execution time of the i-th
// participant and T_1 is the wall-clock execution time of the parallel
// program with one participant.  The dashed line represents perfect linear
// speedup." The measured curve hugs the line, with a dip at 32 where fixed
// overheads (especially registering with the Clearinghouse) become
// significant relative to the shrinking runtime.
#include <cstdio>

#include "bench_util.hpp"
#include "pfold_sweep.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const PfoldSweepConfig cfg = sweep_config_from_flags(flags);
  const auto participants =
      flags.get_int_list("participants", {1, 2, 4, 8, 16, 24, 32});
  reject_unknown_flags(flags);

  banner("Figure 5",
         "pfold speedup S_P = P*T_1 / sum T_P(i) vs participants");
  std::printf("polymer=%d monomers, grain cutoff=%d\n\n", cfg.polymer,
              cfg.cutoff);

  obs::BenchReport report("fig5_pfold_speedup");
  report.set("runtime", "simdist");
  report.set("seed", cfg.seed);
  report.set("polymer", cfg.polymer);
  report.set("cutoff", cfg.cutoff);

  const auto base = run_pfold_at(cfg, 1);
  const double t1 = base.participant_seconds[0];
  report.set("t1_seconds", t1);
  report_sim_result(report, "P1", base);
  report.set("P1.speedup", 1.0);

  TextTable table({"P", "S_P", "perfect", "efficiency"});
  table.add_row({"1", "1.00", "1", "1.00"});
  kv("fig5.P1.speedup", 1.0);
  for (std::int64_t p : participants) {
    if (p == 1) continue;
    const auto result = run_pfold_at(cfg, static_cast<int>(p));
    const double sp = paper_speedup(t1, result.participant_seconds);
    table.add_row({TextTable::num(static_cast<std::int64_t>(p)),
                   TextTable::num(sp, 2),
                   TextTable::num(static_cast<std::int64_t>(p)),
                   TextTable::num(sp / static_cast<double>(p), 3)});
    kv("fig5.P" + std::to_string(p) + ".speedup", sp);
    const std::string prefix = "P" + std::to_string(p);
    report_sim_result(report, prefix, result);
    report.set(prefix + ".speedup", sp);
    report.set(prefix + ".efficiency", sp / static_cast<double>(p));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\npaper shape: near-linear through 32 participants, slight "
              "droop at 32 from fixed registration overheads.\n");
  report.set_metrics(obs::Registry::global().snapshot());
  report.write();
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
