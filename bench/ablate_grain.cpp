// Ablation A8 — task grain size: the variable behind the whole of Table 1.
//
// The paper: "The fib application incurs serial slowdown because of its tiny
// grain size ... The fairly coarse grain size of the ray application incurs
// very little serial slowdown."  Grain is the practical knob every Phish
// programmer controls (how deep to spawn before going serial), trading
// scheduling overhead (favours coarse) against available parallelism
// (favours fine).  This bench sweeps pfold's sequential cutoff and reports
// both sides: the 1-worker serial slowdown in real time (threads runtime)
// and the P=8 speedup in simulated time.
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "pfold_sweep.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 15));
  const int participants = static_cast<int>(flags.get_int("participants", 8));
  const auto cutoffs = flags.get_int_list("cutoffs", {2, 4, 6, 8, 10, 12});
  const int reps = static_cast<int>(flags.get_int("reps", 3));
  reject_unknown_flags(flags);

  banner("Ablation A8", "task grain (pfold sequential cutoff) vs overhead "
                        "and speedup");
  std::printf("pfold polymer=%d; slowdown measured in real time on one "
              "worker, speedup at P=%d in simulated time\n\n",
              polymer, participants);

  // Baseline: best serial implementation, real time.
  const double serial_s = time_best_of(reps, [&] {
    volatile std::uint64_t sink = apps::pfold_count(polymer);
    (void)sink;
  });

  TextTable table({"cutoff", "tasks", "slowdown(1 worker)",
                   std::string("S_") + std::to_string(participants),
                   "steals"});
  for (std::int64_t cutoff : cutoffs) {
    // Real-time serial slowdown on the threads runtime.
    TaskRegistry reg;
    const TaskId root = apps::register_pfold(reg, static_cast<int>(cutoff));
    rt::ThreadsConfig tcfg;
    tcfg.workers = 1;
    rt::ThreadsRuntime trt(reg, tcfg);
    std::uint64_t tasks = 0;
    const double one_worker_s = time_best_of(reps, [&] {
      const auto r = trt.run(root, {Value(std::int64_t{polymer})});
      tasks = r.aggregate.tasks_executed;
    });

    // Simulated-time speedup at P.
    PfoldSweepConfig scfg;
    scfg.polymer = polymer;
    scfg.cutoff = static_cast<int>(cutoff);
    const auto r1 = run_pfold_at(scfg, 1);
    const auto rp = run_pfold_at(scfg, participants);
    const double sp = paper_speedup(r1.participant_seconds[0],
                                    rp.participant_seconds);

    table.add_row({TextTable::num(cutoff), TextTable::num(tasks),
                   TextTable::num(one_worker_s / serial_s, 2),
                   TextTable::num(sp, 2),
                   TextTable::num(rp.aggregate.tasks_stolen_by_me)});
    kv("a8.cutoff" + std::to_string(cutoff) + ".slowdown",
       one_worker_s / serial_s);
    kv("a8.cutoff" + std::to_string(cutoff) + ".speedup", sp);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: finer grain (small cutoff) costs serial slowdown "
              "but parallelism stays plentiful; very coarse grain is cheap "
              "serially but caps the speedup when tasks get scarce.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
