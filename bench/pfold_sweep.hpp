// Shared pfold participant-sweep used by the Figure 4, Figure 5, and
// Table 2 benches: the paper's measurement configuration on the simulated
// workstation network.
//
// Measurement conventions, matching Section 4:
//   * idle workstations only (always-idle owner traces; here simply a plain
//     SimCluster with no macro layer);
//   * participants started "at as close to the same time as possible"
//     (small start jitter, root worker first);
//   * T_P(i) = wall-clock lifetime of participant i;
//   * S_P = P * T_1 / sum_i T_P(i).
// Heartbeats and periodic membership updates are disabled: the 1994
// prototype had neither, and Table 2 counts messages.
#pragma once

#include "apps/pfold/pfold.hpp"
#include "obs/bench_report.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "util/flags.hpp"

namespace phish::bench {

struct PfoldSweepConfig {
  // Defaults chosen so the job is long enough (T1 ~ 40 simulated seconds)
  // for startup overheads to amortize as they did in the paper's runs, while
  // each sweep still completes in a few wall-clock seconds.
  int polymer = 18;     // monomers
  int cutoff = 7;       // sequential_monomers grain
  std::uint64_t seed = 1994;
};

inline PfoldSweepConfig sweep_config_from_flags(const Flags& flags) {
  PfoldSweepConfig cfg;
  cfg.polymer = static_cast<int>(flags.get_int("polymer", cfg.polymer));
  cfg.cutoff = static_cast<int>(flags.get_int("cutoff", cfg.cutoff));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1994));
  return cfg;
}

inline rt::SimJobResult run_pfold_at(const PfoldSweepConfig& cfg,
                                     int participants,
                                     obs::Tracer* tracer = nullptr) {
  TaskRegistry registry;
  const TaskId root = apps::register_pfold(registry, cfg.cutoff);
  rt::SimJobConfig job;
  job.participants = participants;
  job.seed = cfg.seed + static_cast<std::uint64_t>(participants);
  job.clearinghouse.detect_failures = false;
  job.worker.heartbeat_period = 0;
  job.worker.update_period = 0;
  job.max_sim_time = 36'000 * sim::kSecond;
  job.tracer = tracer;
  return rt::run_sim_job(registry, root,
                         {Value(std::int64_t{cfg.polymer})}, job);
}

/// Record one simulated run's Table-2 counters under `prefix.*` in a
/// BENCH_*.json report (the machine-readable twin of the stdout tables).
inline void report_sim_result(obs::BenchReport& report,
                              const std::string& prefix,
                              const rt::SimJobResult& r) {
  report.set(prefix + ".avg_seconds", r.average_participant_seconds);
  report.set(prefix + ".makespan_seconds", r.makespan_seconds);
  report.set(prefix + ".tasks_executed", r.aggregate.tasks_executed);
  report.set(prefix + ".max_tasks_in_use", r.aggregate.max_tasks_in_use);
  report.set(prefix + ".tasks_stolen", r.aggregate.tasks_stolen_by_me);
  report.set(prefix + ".synchronizations", r.aggregate.synchronizations);
  report.set(prefix + ".non_local_synchs", r.aggregate.non_local_synchs);
  report.set(prefix + ".messages_sent", r.messages_sent);
}

/// The paper's speedup definition: S_P = P * T_1 / sum_i T_P(i).
inline double paper_speedup(double t1_seconds,
                            const std::vector<double>& participant_seconds) {
  double sum = 0.0;
  for (double t : participant_seconds) sum += t;
  return static_cast<double>(participant_seconds.size()) * t1_seconds / sum;
}

}  // namespace phish::bench
