// Shared pfold participant-sweep used by the Figure 4, Figure 5, and
// Table 2 benches: the paper's measurement configuration on the simulated
// workstation network.
//
// Measurement conventions, matching Section 4:
//   * idle workstations only (always-idle owner traces; here simply a plain
//     SimCluster with no macro layer);
//   * participants started "at as close to the same time as possible"
//     (small start jitter, root worker first);
//   * T_P(i) = wall-clock lifetime of participant i;
//   * S_P = P * T_1 / sum_i T_P(i).
// Heartbeats and periodic membership updates are disabled: the 1994
// prototype had neither, and Table 2 counts messages.
#pragma once

#include "apps/pfold/pfold.hpp"
#include "obs/bench_report.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "util/flags.hpp"

namespace phish::bench {

struct PfoldSweepConfig {
  // Defaults chosen so the job is long enough (T1 ~ 40 simulated seconds)
  // for startup overheads to amortize as they did in the paper's runs, while
  // each sweep still completes in a few wall-clock seconds.
  int polymer = 18;     // monomers
  int cutoff = 7;       // sequential_monomers grain
  std::uint64_t seed = 1994;
  /// Failure-injection mode (--failures=1): crash the primary Clearinghouse
  /// (warm standby promotes), crash-then-rejoin one worker mid-job, and (at
  /// P>3) reclaim a worker just before the crash so the migration durability
  /// ledger is in play — if the crashing worker was the migration successor,
  /// the run exercises migrate-then-crash redelivery, reported as
  /// `recovery.migration_redo`.  The 1994 measurement conventions (no
  /// heartbeats, no detection) do not apply in this mode: it measures
  /// recovery, not locality.
  bool inject_failures = false;
};

inline PfoldSweepConfig sweep_config_from_flags(const Flags& flags) {
  PfoldSweepConfig cfg;
  cfg.polymer = static_cast<int>(flags.get_int("polymer", cfg.polymer));
  cfg.cutoff = static_cast<int>(flags.get_int("cutoff", cfg.cutoff));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1994));
  cfg.inject_failures = flags.get_int("failures", 0) != 0;
  return cfg;
}

inline rt::SimJobResult run_pfold_at(
    const PfoldSweepConfig& cfg, int participants,
    obs::Tracer* tracer = nullptr,
    RecoveryTracker::Snapshot* recovery = nullptr) {
  TaskRegistry registry;
  const TaskId root = apps::register_pfold(registry, cfg.cutoff);
  rt::SimJobConfig job;
  job.participants = participants;
  job.seed = cfg.seed + static_cast<std::uint64_t>(participants);
  job.clearinghouse.detect_failures = false;
  job.worker.heartbeat_period = 0;
  job.worker.update_period = 0;
  job.max_sim_time = 36'000 * sim::kSecond;
  job.tracer = tracer;
  if (cfg.inject_failures) {
    job.enable_backup = true;
    job.clearinghouse.detect_failures = true;
    job.clearinghouse.heartbeat_timeout_ns = 700 * sim::kMillisecond;
    job.clearinghouse.failure_check_period_ns = 150 * sim::kMillisecond;
    job.clearinghouse.replicate_period_ns = 150 * sim::kMillisecond;
    job.clearinghouse.lease_timeout_ns = 600 * sim::kMillisecond;
    job.clearinghouse.lease_check_period_ns = 150 * sim::kMillisecond;
    job.worker.heartbeat_period = 100 * sim::kMillisecond;
  }
  rt::SimCluster cluster(registry, job);
  if (cfg.inject_failures) {
    cluster.crash_primary_at(500 * sim::kMillisecond);
    if (participants > 2) {
      cluster.crash_at(1, 300 * sim::kMillisecond);
      cluster.rejoin_at(1, 2 * sim::kSecond);
    }
    if (participants > 3) {
      // Owner return (paper case (d)) ahead of the crash above having been
      // detected: the drained cargo lands under the durability ledger, and
      // a successor death redelivers it (recovery.migration_redo).
      cluster.reclaim_at(2, 250 * sim::kMillisecond);
      cluster.rejoin_at(2, 2'500 * sim::kMillisecond);
    }
  }
  rt::SimJobResult result =
      cluster.run(root, {Value(std::int64_t{cfg.polymer})});
  if (recovery != nullptr) *recovery = cluster.recovery().snapshot();
  return result;
}

/// Failover counters + last MTTR for one failure-injected run; the full
/// `recovery.mttr_ns` histogram rides the report's metrics snapshot.
inline void report_recovery(obs::BenchReport& report, const std::string& prefix,
                            const RecoveryTracker::Snapshot& s) {
  report.set(prefix + ".recovery.detects", s.detects);
  report.set(prefix + ".recovery.promotions", s.promotions);
  report.set(prefix + ".recovery.rejoins", s.rejoins);
  report.set(prefix + ".recovery.mttr_count", s.mttr_count);
  report.set(prefix + ".recovery.mttr_ns", s.last_mttr_ns);
  report.set(prefix + ".recovery.migration_redo", s.migration_redo);
}

/// Record one simulated run's Table-2 counters under `prefix.*` in a
/// BENCH_*.json report (the machine-readable twin of the stdout tables).
inline void report_sim_result(obs::BenchReport& report,
                              const std::string& prefix,
                              const rt::SimJobResult& r) {
  report.set(prefix + ".avg_seconds", r.average_participant_seconds);
  report.set(prefix + ".makespan_seconds", r.makespan_seconds);
  report.set(prefix + ".tasks_executed", r.aggregate.tasks_executed);
  report.set(prefix + ".max_tasks_in_use", r.aggregate.max_tasks_in_use);
  report.set(prefix + ".tasks_stolen", r.aggregate.tasks_stolen_by_me);
  report.set(prefix + ".synchronizations", r.aggregate.synchronizations);
  report.set(prefix + ".non_local_synchs", r.aggregate.non_local_synchs);
  report.set(prefix + ".messages_sent", r.messages_sent);
}

/// The paper's speedup definition: S_P = P * T_1 / sum_i T_P(i).
inline double paper_speedup(double t1_seconds,
                            const std::vector<double>& participant_seconds) {
  double sum = 0.0;
  for (double t : participant_seconds) sum += t;
  return static_cast<double>(participant_seconds.size()) * t1_seconds / sum;
}

}  // namespace phish::bench
