// Ablation A2 — steal end: FIFO/tail (the paper's choice) vs LIFO/head.
//
// The paper's communication-locality argument: "stealing in FIFO order has
// an intuitive payoff in preserving communication locality, because for
// computations with a tree-like structure, the task at the tail of the ready
// list is often a task near the base of the tree, and therefore, a task that
// will spawn many descendent tasks."  Stealing big subtrees means fewer
// steals, fewer messages, and fewer non-local synchronizations for the same
// balance.
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "pfold_sweep.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 15));
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 5));
  const int participants = static_cast<int>(flags.get_int("participants", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  reject_unknown_flags(flags);

  banner("Ablation A2", "FIFO (tail) vs LIFO (head) steal order");
  std::printf("pfold polymer=%d cutoff=%d, P=%d\n\n", polymer, cutoff,
              participants);

  TextTable table({"steal order", "tasks stolen", "avg stolen depth",
                   "avg executed depth", "non-local synchs", "messages",
                   "avg time (s)"});
  for (StealOrder order : {StealOrder::kFifo, StealOrder::kLifo}) {
    TaskRegistry registry;
    const TaskId root = apps::register_pfold(registry, cutoff);
    rt::SimJobConfig job;
    job.participants = participants;
    job.seed = seed;
    job.steal_order = order;
    job.clearinghouse.detect_failures = false;
    job.worker.heartbeat_period = 0;
    job.worker.update_period = 0;
    const auto result = rt::run_sim_job(registry, root,
                                        {Value(std::int64_t{polymer})}, job);
    const char* label = order == StealOrder::kFifo ? "FIFO (paper)" : "LIFO";
    table.add_row({label, TextTable::num(result.aggregate.tasks_stolen_by_me),
                   TextTable::num(result.aggregate.avg_stolen_depth(), 1),
                   TextTable::num(result.aggregate.avg_executed_depth(), 1),
                   TextTable::num(result.aggregate.non_local_synchs),
                   TextTable::num(result.messages_sent),
                   TextTable::num(result.average_participant_seconds, 3)});
    const std::string key = order == StealOrder::kFifo ? "fifo" : "lifo";
    kv("a2." + key + ".stolen", result.aggregate.tasks_stolen_by_me);
    kv("a2." + key + ".messages", result.messages_sent);
    kv("a2." + key + ".avg_seconds", result.average_participant_seconds);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: FIFO steals tasks near the BASE of the spawn tree "
              "(avg stolen depth well below avg executed depth) — each steal "
              "moves a big subtree; LIFO steals leaf-ward tasks, so it "
              "steals and messages far more for the same work.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
