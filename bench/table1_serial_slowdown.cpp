// Table 1 — serial slowdown.
//
// Paper: "Serial slowdown measured for three applications on the CM-5 using
// the Strata scheduling library and on a SparcStation 10 using Phish":
//
//     app      CM-5/Strata   SparcStation 10/Phish
//     fib      4.44          5.90
//     nqueens  1.09          1.12
//     ray      1.00          1.04
//
// Here: serial slowdown = (parallel implementation on ONE worker) / (best
// serial implementation), measured in real wall-clock on this host.
//   * "static" column  = threads runtime, static processor set (the
//     Strata/CM-5 analog);
//   * "phish" column   = same engine plus Phish's per-task obligations
//     (non-blocking UDP poll + dynamic-membership check), the paper's
//     stated sources of Phish's extra slowdown.
//
// Shape targets: slowdown(fib) >> slowdown(nqueens) > slowdown(ray) ~= 1,
// and phish >= static for every app.  Absolute numbers differ from 1994:
// today's CPUs execute a fib leaf in ~1-2 ns while a heap-allocated task
// costs hundreds of ns, so fully fine-grained fib shows a much larger factor
// than the SparcStation did (the fib row with a small sequential cutoff
// restores a 1994-like grain/overhead ratio for comparison).
#include <cstdio>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "obs/bench_report.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::bench {
namespace {

struct Row {
  std::string app;
  double serial_s;
  double static_s;
  double phish_s;
};

Row measure(const std::string& app, const TaskRegistry& registry, TaskId root,
            std::vector<Value> args, const std::function<void()>& serial_fn,
            int reps) {
  Row row;
  row.app = app;

  rt::ThreadsConfig static_cfg;
  static_cfg.workers = 1;
  rt::ThreadsRuntime static_rt(registry, static_cfg);

  rt::ThreadsConfig phish_cfg;
  phish_cfg.workers = 1;
  phish_cfg.phish_overheads = true;
  rt::ThreadsRuntime phish_rt(registry, phish_cfg);

  // The serial baselines finish in well under a millisecond; batch them up
  // to a measurable window so the slowdown denominator is not timer noise
  // (see bench_util.hpp).  The calibration probes double as CPU warm-up.
  const std::uint64_t serial_iters = scaled_iters(serial_fn);

  // Warm both runtimes untimed: a job's first run on a fresh closure pool
  // pays chunk allocation and page faults that steady state never sees.
  // Pre-touch the registry's flat dispatch array for the same reason —
  // execute() reads TaskEntry{fn, env} from it on every task, and its first
  // page fault otherwise lands inside a timed rep.
  {
    const TaskEntry* entries = registry.entries();
    for (std::size_t i = 0; i < registry.size(); ++i) {
      volatile const void* touch = entries[i].env;
      (void)touch;
    }
    auto a = args;
    static_rt.run(root, std::move(a));
    a = args;
    phish_rt.run(root, std::move(a));
  }

  // Interleave the three columns round-robin rather than timing each to
  // completion in turn.  A slowdown is a ratio; if the host throttles or a
  // noisy neighbour appears halfway through, sequential timing charges the
  // slow epoch entirely to the later columns.  Round-robin sampling spreads
  // every column across the same wall-clock span, and best-of then picks
  // each column's sample from the common fast epochs.
  row.serial_s = row.static_s = row.phish_s = 1e300;
  for (int i = 0; i < reps; ++i) {
    {
      Stopwatch watch;
      for (std::uint64_t j = 0; j < serial_iters; ++j) serial_fn();
      row.serial_s = std::min(
          row.serial_s,
          watch.elapsed_seconds() / static_cast<double>(serial_iters));
    }
    {
      auto a = args;
      Stopwatch watch;
      static_rt.run(root, std::move(a));
      row.static_s = std::min(row.static_s, watch.elapsed_seconds());
    }
    {
      auto a = args;
      Stopwatch watch;
      phish_rt.run(root, std::move(a));
      row.phish_s = std::min(row.phish_s, watch.elapsed_seconds());
    }
  }
  return row;
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::int64_t fib_n = flags.get_int("fib_n", 27);
  const std::int64_t fib_cutoff = flags.get_int("fib_cutoff", 5);
  const std::int64_t nqueens_n = flags.get_int("nqueens_n", 12);
  const int ray_size = static_cast<int>(flags.get_int("ray_size", 96));
  // 5 rounds per column: on a small shared host the best-of needs a few
  // extra samples to reliably land in a quiet epoch.
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  reject_unknown_flags(flags);

  banner("Table 1", "serial slowdown: parallel-on-1-worker / best-serial");

  std::vector<Row> rows;

  {
    TaskRegistry reg;
    const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/0);
    rows.push_back(measure(
        "fib(" + std::to_string(fib_n) + ")", reg, root, {Value(fib_n)},
        [&] {
          volatile std::int64_t sink = apps::fib_serial(fib_n);
          (void)sink;
        },
        reps));
  }
  {
    TaskRegistry reg;
    const TaskId root = apps::register_fib(
        reg, /*sequential_cutoff=*/fib_cutoff);
    rows.push_back(measure(
        "fib(" + std::to_string(fib_n) + ") grain=" +
            std::to_string(fib_cutoff),
        reg, root, {Value(fib_n)},
        [&] {
          volatile std::int64_t sink = apps::fib_serial(fib_n);
          (void)sink;
        },
        reps));
  }
  {
    TaskRegistry reg;
    const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/7);
    rows.push_back(measure(
        "nqueens(" + std::to_string(nqueens_n) + ")", reg, root,
        {Value(nqueens_n)},
        [&] {
          volatile std::int64_t sink =
              apps::nqueens_serial(static_cast<int>(nqueens_n));
          (void)sink;
        },
        reps));
  }
  {
    const apps::Scene scene = apps::make_default_scene();
    TaskRegistry reg;
    const TaskId root =
        apps::register_ray(reg, scene, ray_size, ray_size, 1024);
    rows.push_back(measure(
        "ray(" + std::to_string(ray_size) + "x" + std::to_string(ray_size) +
            ")",
        reg, root, {},
        [&] {
          const apps::Image img = apps::render_serial(scene, ray_size,
                                                      ray_size);
          volatile std::uint8_t sink = img.rgb.empty() ? 0 : img.rgb[0];
          (void)sink;
        },
        reps));
  }

  obs::BenchReport report("table1_serial_slowdown");
  report.set("runtime", "threads");
  report.set("workers", 1);
  report.set("reps", reps);
  TextTable table({"app", "serial(s)", "static-1p(s)", "slowdown(static)",
                   "phish-1p(s)", "slowdown(phish)"});
  for (const Row& r : rows) {
    const double s_static = r.static_s / r.serial_s;
    const double s_phish = r.phish_s / r.serial_s;
    table.add_row({r.app, TextTable::num(r.serial_s, 4),
                   TextTable::num(r.static_s, 4),
                   TextTable::num(s_static, 2), TextTable::num(r.phish_s, 4),
                   TextTable::num(s_phish, 2)});
    kv("table1." + r.app + ".slowdown_static", s_static);
    kv("table1." + r.app + ".slowdown_phish", s_phish);
    report.set(r.app + ".serial_seconds", r.serial_s);
    report.set(r.app + ".static_seconds", r.static_s);
    report.set(r.app + ".phish_seconds", r.phish_s);
    report.set(r.app + ".slowdown_static", s_static);
    report.set(r.app + ".slowdown_phish", s_phish);
  }
  report.set_metrics(obs::Registry::global().snapshot());
  report.write();
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\npaper (1994): fib 4.44/5.90, nqueens 1.09/1.12, ray 1.00/1.04\n"
      "shape: fib >> nqueens > ray ~= 1, and phish >= static per app.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
