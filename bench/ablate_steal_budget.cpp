// Ablation A6 — the thief's give-up threshold (max_failed_steals).
//
// Paper: "If no task can be found even after many attempted steals, the
// amount of parallelism in the job must have decreased.  In response ...
// the thief process terminates, and the terminated process's workstation
// goes back under the control of the macro-level scheduler."
//
// The threshold trades responsiveness for stability: a tiny budget releases
// workstations quickly (good for the macro level) but risks quitting during
// a momentary lull; a huge budget burns steal messages polling an
// essentially serial job.  Workload: fib with a large sequential cutoff —
// one long serial task, so the extra participants are pure thieves.
#include <cstdio>

#include "apps/fib/fib.hpp"
#include "bench_util.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::int64_t fib_n = flags.get_int("fib_n", 32);
  const int participants = static_cast<int>(flags.get_int("participants", 8));
  const auto budgets = flags.get_int_list("budgets", {2, 5, 20, 100, 1000});
  reject_unknown_flags(flags);

  banner("Ablation A6", "steal-attempt budget vs thief departure and wasted "
                        "messages");
  std::printf("fib(%lld) run as ONE serial task; %d participants, %d of them "
              "pure thieves\n\n",
              static_cast<long long>(fib_n), participants, participants - 1);

  TextTable table({"budget", "thieves departed", "steal requests",
                   "wasted workstation-s", "makespan (s)"});
  for (std::int64_t budget : budgets) {
    TaskRegistry registry;
    const TaskId root = apps::register_fib(registry,
                                           /*sequential_cutoff=*/60);
    rt::SimJobConfig job;
    job.participants = participants;
    job.seed = 11 + static_cast<std::uint64_t>(budget);
    job.clearinghouse.detect_failures = false;
    job.worker.heartbeat_period = 0;
    job.worker.update_period = 0;
    job.worker.max_failed_steals = static_cast<int>(budget);
    job.worker.steal_retry_delay = 5 * sim::kMillisecond;
    rt::SimCluster cluster(registry, job);
    const auto result = cluster.run(root, {Value(fib_n)});

    int departed = 0;
    double wasted_seconds = 0.0;
    for (int i = 0; i < participants; ++i) {
      const auto& w = cluster.worker(i);
      if (w.depart_reason() ==
          rt::SimWorker::DepartReason::kParallelismShrank) {
        ++departed;
      }
      if (i > 0) wasted_seconds += sim::to_seconds(w.lifetime());
    }
    table.add_row({TextTable::num(budget), TextTable::num(
                       static_cast<std::int64_t>(departed)),
                   TextTable::num(result.aggregate.steal_requests_sent),
                   TextTable::num(wasted_seconds, 3),
                   TextTable::num(result.makespan_seconds, 3)});
    kv("a6.budget" + std::to_string(budget) + ".departed",
       static_cast<std::uint64_t>(departed));
    kv("a6.budget" + std::to_string(budget) + ".steal_requests",
       result.aggregate.steal_requests_sent);
    kv("a6.budget" + std::to_string(budget) + ".wasted_seconds",
       wasted_seconds);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: small budgets release the idle workstations "
              "almost immediately; large budgets hold them for the whole "
              "job, polling uselessly.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
