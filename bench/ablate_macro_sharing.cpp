// Ablation A4 — space-sharing vs gang time-sharing at the macro level.
//
// The paper (after Tucker & Gupta): "empirical evidence indicates that
// better throughput may be achieved by space-sharing rather than
// time-sharing ... each job gets a dedicated set of processors, and all
// context-switching overheads are avoided."
//
// Space-sharing: the real macro scheduler (PhishJobQ round-robin) divides W
// idle workstations among K concurrent jobs.
//
// Gang time-sharing model: every job runs on ALL W workstations, but each
// workstation multiplexes the K jobs round-robin with quantum Q and context
// -switch cost S, so each worker effectively runs at speed
// (1/K) * Q/(Q+S).  (Each gang-scheduled job is independent under this
// model, so we simulate the K jobs separately at the degraded speed; this is
// exact for identical jobs and charitable to time-sharing otherwise — it
// ignores the swapped-out-receiver effect Brewer & Kuszmaul describe.)
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "runtime/simdist/macro_cluster.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 15));
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 5));
  const int jobs = static_cast<int>(flags.get_int("jobs", 3));
  const int workstations = static_cast<int>(flags.get_int("workstations", 6));
  const double quantum_ms = flags.get_double("quantum_ms", 100.0);
  const double switch_ms = flags.get_double("switch_ms", 10.0);
  reject_unknown_flags(flags);

  banner("Ablation A4", "space-sharing (macro scheduler) vs gang "
                        "time-sharing (modelled)");
  std::printf("%d identical pfold(%d) jobs, %d workstations; time-share "
              "quantum %.0f ms, switch cost %.0f ms\n\n",
              jobs, polymer, workstations, quantum_ms, switch_ms);

  TaskRegistry registry;
  apps::register_pfold(registry, cutoff);

  // ---- Space sharing: the real thing. ----
  double space_makespan = 0.0;
  double space_avg_turnaround = 0.0;
  {
    rt::MacroConfig cfg;
    cfg.clearinghouse.detect_failures = false;
    cfg.manager.job_poll = sim::kSecond;
    cfg.manager.owner_poll = 200 * sim::kMillisecond;
    cfg.worker.heartbeat_period = 0;
    cfg.worker.update_period = 2 * sim::kSecond;
    cfg.worker.max_failed_steals = 200;
    rt::MacroCluster cluster(registry, cfg);
    for (int i = 0; i < workstations; ++i) {
      cluster.add_workstation(rt::OwnerTrace::always_idle());
    }
    for (int j = 0; j < jobs; ++j) {
      cluster.submit_job("pfold-" + std::to_string(j), "pfold.root",
                         {Value(std::int64_t{polymer})}, 0);
    }
    const auto records = cluster.run();
    for (const auto& r : records) {
      space_makespan = std::max(space_makespan,
                                sim::to_seconds(r.completed_at));
      space_avg_turnaround += r.turnaround_seconds();
    }
    space_avg_turnaround /= static_cast<double>(records.size());
  }

  // ---- Gang time-sharing model. ----
  const double efficiency =
      (quantum_ms / (quantum_ms + switch_ms)) / static_cast<double>(jobs);
  double time_makespan = 0.0;
  double time_avg_turnaround = 0.0;
  {
    TaskRegistry reg2;
    const TaskId root = apps::register_pfold(reg2, cutoff);
    rt::SimJobConfig job;
    job.participants = workstations;  // every job gets ALL workstations
    job.seed = 99;
    job.clearinghouse.detect_failures = false;
    job.worker.heartbeat_period = 0;
    job.worker.update_period = 0;
    job.worker.cpu_speed = efficiency;  // degraded by multiplexing
    job.max_sim_time = 36'000 * sim::kSecond;
    const auto result = rt::run_sim_job(reg2, root,
                                        {Value(std::int64_t{polymer})}, job);
    // K identical gang-scheduled jobs finish at (approximately) the same
    // time: the degraded-speed makespan.
    time_makespan = result.makespan_seconds;
    time_avg_turnaround = result.makespan_seconds;
  }

  TextTable table({"policy", "makespan (s)", "avg turnaround (s)"});
  table.add_row({"space-sharing (paper)", TextTable::num(space_makespan, 3),
                 TextTable::num(space_avg_turnaround, 3)});
  table.add_row({"gang time-sharing", TextTable::num(time_makespan, 3),
                 TextTable::num(time_avg_turnaround, 3)});
  std::printf("%s", table.to_string().c_str());
  kv("a4.space.makespan", space_makespan);
  kv("a4.space.avg_turnaround", space_avg_turnaround);
  kv("a4.timeshare.makespan", time_makespan);
  kv("a4.timeshare.avg_turnaround", time_avg_turnaround);
  std::printf("\nexpected: comparable makespans (same total work) but "
              "time-sharing pays the context-switch tax (%.0f%% efficiency "
              "loss) and delivers no early completions, so its average "
              "turnaround is worse.\n",
              100.0 * (1.0 - efficiency * jobs));
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
