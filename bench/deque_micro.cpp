// Ablation A5 — ready-deque implementations (google-benchmark).
//
// The 1994 prototype's ready list needs no synchronization at all (steals
// arrive as messages, handled by the same process), which this repo models
// with the plain ReadyDeque.  The shared-memory threads runtime guards that
// deque with a mutex; the Chase–Lev deque is the modern lock-free
// alternative.  These microbenches quantify the per-operation costs so the
// ablation discussion in DESIGN.md has numbers: on a workstation network the
// difference vanishes under ~400 us message overheads, but in shared memory
// it is visible.
#include <benchmark/benchmark.h>

#include <mutex>

#include "core/chase_lev.hpp"
#include "core/ready_deque.hpp"
#include "core/worker_core.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish {
namespace {

Closure make_closure(std::uint64_t seq) {
  Closure c;
  c.id = ClosureId{net::NodeId{0}, seq};
  c.task = 0;
  c.args = {Value(std::int64_t{1}), Value(std::int64_t{2})};
  c.filled = {true, true};
  return c;
}

void BM_ReadyDequePushPop(benchmark::State& state) {
  ReadyDeque d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.pop_for_execution());
  }
}
BENCHMARK(BM_ReadyDequePushPop);

void BM_ReadyDequePushPopWithMutex(benchmark::State& state) {
  // The threads runtime's actual configuration: deque ops under a mutex.
  ReadyDeque d;
  std::mutex m;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(m);
      d.push(make_closure(++seq));
    }
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(d.pop_for_execution());
  }
}
BENCHMARK(BM_ReadyDequePushPopWithMutex);

void BM_ChaseLevPushPop(benchmark::State& state) {
  ChaseLevDeque<Closure> d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.pop());
  }
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_ReadyDequeStealPath(benchmark::State& state) {
  ReadyDeque d;
  std::mutex m;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(m);
      d.push(make_closure(++seq));
    }
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(d.pop_for_steal());
  }
}
BENCHMARK(BM_ReadyDequeStealPath);

void BM_ChaseLevStealPath(benchmark::State& state) {
  ChaseLevDeque<Closure> d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.steal());
  }
}
BENCHMARK(BM_ChaseLevStealPath);

void BM_ReadyDequeDeepLifo(benchmark::State& state) {
  // Model a depth-first burst: push `depth` tasks, pop them all.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  ReadyDeque d;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < depth; ++i) d.push(make_closure(i));
    while (auto c = d.pop_for_execution()) benchmark::DoNotOptimize(*c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ReadyDequeDeepLifo)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChaseLevDeep(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  ChaseLevDeque<Closure> d;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < depth; ++i) d.push(make_closure(i));
    while (auto c = d.pop()) benchmark::DoNotOptimize(*c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ChaseLevDeep)->Arg(16)->Arg(256)->Arg(4096);

// ---- Tracing overhead: the full WorkerCore spawn/execute hot path with the
// observability hooks detached vs attached vs runtime-disabled.
//
// The benchmark arg is the task grain: rounds of an integer mix inside each
// leaf body.  Grain 0 is the bare-scheduler worst case and documents the
// absolute per-event cost (a few clock reads + wait-free ring pushes per
// task — tracing an *empty* task can never be free).  Grain 4096 (~7 us)
// is still far below real task bodies (pfold/fib leaves run tens of
// microseconds to milliseconds), and is where the <5% acceptance target is
// evaluated.  The disabled row must match the detached row at every grain:
// the runtime switch is checked before any clock read.

void spawn_execute_burst(WorkerCore& core, TaskId leaf, std::uint64_t n,
                         std::int64_t grain) {
  for (std::uint64_t i = 0; i < n; ++i) {
    core.spawn(leaf, {Value(grain)}, ContRef{ClosureId{}, 0, net::NodeId{0}},
               0);
  }
  while (auto c = core.pop_for_execution()) core.execute(*c);
}

TaskRegistry& leaf_registry() {
  static TaskRegistry registry = [] {
    TaskRegistry r;
    r.add("leaf", [](Context&, Closure& c) {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL;
      const std::int64_t rounds = c.args[0].as_int();
      for (std::int64_t i = 0; i < rounds; ++i) {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
      }
      benchmark::DoNotOptimize(x);
    });
    return r;
  }();
  return registry;
}

WorkerCore::Hooks null_hooks() {
  WorkerCore::Hooks hooks;
  hooks.send_remote = [](const ContRef&, Value) {};
  return hooks;
}

void BM_WorkerCoreSpawnExecute(benchmark::State& state) {
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  WorkerCore core(net::NodeId{0}, registry, null_hooks());
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_WorkerCoreSpawnExecute)->Arg(0)->Arg(4096);

void BM_WorkerCoreSpawnExecuteTraced(benchmark::State& state) {
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  WorkerCore core(net::NodeId{0}, registry, null_hooks());
  obs::Tracer tracer;
  obs::SteadyClock clock;
  core.set_trace(tracer.shard(0), &clock);
  // Drain outside the timed region (every 256 bursts stays well under the
  // ring capacity) so the producer is measured on the normal push path, not
  // the ring-full drop path, and no consumer thread perturbs the numbers.
  int since_drain = 0;
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
    if (++since_drain == 256) {
      state.PauseTiming();
      benchmark::DoNotOptimize(tracer.collect().size());
      state.ResumeTiming();
      since_drain = 0;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["dropped"] =
      static_cast<double>(tracer.total_dropped());
}
BENCHMARK(BM_WorkerCoreSpawnExecuteTraced)->Arg(0)->Arg(4096);

void BM_WorkerCoreSpawnExecuteTracerDisabled(benchmark::State& state) {
  // Shard attached but the runtime switch is off: the cost of the hooks when
  // a tracer exists but tracing is not enabled for this run.
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  WorkerCore core(net::NodeId{0}, registry, null_hooks());
  obs::Tracer tracer;
  obs::SteadyClock clock;
  core.set_trace(tracer.shard(0), &clock);
  tracer.set_enabled(false);
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_WorkerCoreSpawnExecuteTracerDisabled)->Arg(0)->Arg(4096);

}  // namespace
}  // namespace phish

BENCHMARK_MAIN();
