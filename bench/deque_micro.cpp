// Ablation A5 — ready-deque implementations (google-benchmark).
//
// The 1994 prototype's ready list needs no synchronization at all (steals
// arrive as messages, handled by the same process), which this repo models
// with the plain ReadyDeque.  The shared-memory threads runtime guards that
// deque with a mutex; the Chase–Lev deque is the modern lock-free
// alternative.  These microbenches quantify the per-operation costs so the
// ablation discussion in DESIGN.md has numbers: on a workstation network the
// difference vanishes under ~400 us message overheads, but in shared memory
// it is visible.
#include <benchmark/benchmark.h>

#include <mutex>

#include "core/chase_lev.hpp"
#include "core/ready_deque.hpp"

namespace phish {
namespace {

Closure make_closure(std::uint64_t seq) {
  Closure c;
  c.id = ClosureId{net::NodeId{0}, seq};
  c.task = 0;
  c.args = {Value(std::int64_t{1}), Value(std::int64_t{2})};
  c.filled = {true, true};
  return c;
}

void BM_ReadyDequePushPop(benchmark::State& state) {
  ReadyDeque d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.pop_for_execution());
  }
}
BENCHMARK(BM_ReadyDequePushPop);

void BM_ReadyDequePushPopWithMutex(benchmark::State& state) {
  // The threads runtime's actual configuration: deque ops under a mutex.
  ReadyDeque d;
  std::mutex m;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(m);
      d.push(make_closure(++seq));
    }
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(d.pop_for_execution());
  }
}
BENCHMARK(BM_ReadyDequePushPopWithMutex);

void BM_ChaseLevPushPop(benchmark::State& state) {
  ChaseLevDeque<Closure> d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.pop());
  }
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_ReadyDequeStealPath(benchmark::State& state) {
  ReadyDeque d;
  std::mutex m;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(m);
      d.push(make_closure(++seq));
    }
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(d.pop_for_steal());
  }
}
BENCHMARK(BM_ReadyDequeStealPath);

void BM_ChaseLevStealPath(benchmark::State& state) {
  ChaseLevDeque<Closure> d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.steal());
  }
}
BENCHMARK(BM_ChaseLevStealPath);

void BM_ReadyDequeDeepLifo(benchmark::State& state) {
  // Model a depth-first burst: push `depth` tasks, pop them all.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  ReadyDeque d;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < depth; ++i) d.push(make_closure(i));
    while (auto c = d.pop_for_execution()) benchmark::DoNotOptimize(*c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ReadyDequeDeepLifo)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChaseLevDeep(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  ChaseLevDeque<Closure> d;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < depth; ++i) d.push(make_closure(i));
    while (auto c = d.pop()) benchmark::DoNotOptimize(*c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ChaseLevDeep)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace phish

BENCHMARK_MAIN();
