// Ablation A5 + hot-path gate — ready-deque implementations and the task
// hot path (google-benchmark + BENCH_deque_micro.json).
//
// The 1994 prototype's ready list needs no synchronization at all (steals
// arrive as messages, handled by the same process), which this repo models
// with the plain ReadyDeque.  The shared-memory threads runtime guards that
// deque with a mutex; the Chase–Lev deque is the modern lock-free
// alternative.  These microbenches quantify the per-operation costs so the
// ablation discussion in DESIGN.md has numbers: on a workstation network the
// difference vanishes under ~400 us message overheads, but in shared memory
// it is visible.
//
// Before the google-benchmark tables, main() times the scheduler's three hot
// cycles directly — spawn/execute, join create/fill/execute, steal serve —
// and writes them to BENCH_deque_micro.json together with a machine-speed
// calibration loop.  scripts/check_perf_regression.py gates commits on the
// calibration-normalized ratios (see bench/baseline/README.md).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>
#include <vector>

#include "bench_util.hpp"
#include "core/chase_lev.hpp"
#include "core/ready_deque.hpp"
#include "core/worker_core.hpp"
#include "obs/bench_report.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish {
namespace {

Closure make_closure(std::uint64_t seq) {
  Closure c;
  c.id = ClosureId{net::NodeId{0}, seq};
  c.task = 0;
  c.args = {Value(std::int64_t{1}), Value(std::int64_t{2})};
  return c;
}

void BM_ReadyDequePushPop(benchmark::State& state) {
  // The production configuration: the ring holds pointers into the worker's
  // pool, so push/pop move one pointer.
  ReadyDeque d;
  Closure c = make_closure(1);
  for (auto _ : state) {
    d.push(&c);
    benchmark::DoNotOptimize(d.pop_for_execution());
  }
}
BENCHMARK(BM_ReadyDequePushPop);

void BM_ReadyDequePushPopWithMutex(benchmark::State& state) {
  // The threads runtime's actual configuration: deque ops under a mutex.
  ReadyDeque d;
  std::mutex m;
  Closure c = make_closure(1);
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(m);
      d.push(&c);
    }
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(d.pop_for_execution());
  }
}
BENCHMARK(BM_ReadyDequePushPopWithMutex);

void BM_ChaseLevPushPop(benchmark::State& state) {
  // Boxed (by-value) payload: each push heap-allocates a box.
  ChaseLevDeque<Closure> d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.pop());
  }
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_ChaseLevPushPopPointer(benchmark::State& state) {
  // Pointer payload: stored directly in the slots, no boxing.
  ChaseLevDeque<Closure*> d;
  Closure c = make_closure(1);
  for (auto _ : state) {
    d.push(&c);
    benchmark::DoNotOptimize(d.pop());
  }
}
BENCHMARK(BM_ChaseLevPushPopPointer);

void BM_ReadyDequeStealPath(benchmark::State& state) {
  ReadyDeque d;
  std::mutex m;
  Closure c = make_closure(1);
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(m);
      d.push(&c);
    }
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(d.pop_for_steal());
  }
}
BENCHMARK(BM_ReadyDequeStealPath);

void BM_ChaseLevStealPath(benchmark::State& state) {
  ChaseLevDeque<Closure> d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.push(make_closure(++seq));
    benchmark::DoNotOptimize(d.steal());
  }
}
BENCHMARK(BM_ChaseLevStealPath);

void BM_ReadyDequeDeepLifo(benchmark::State& state) {
  // Model a depth-first burst: push `depth` tasks, pop them all.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  ReadyDeque d;
  std::vector<Closure> storage;
  storage.reserve(depth);
  for (std::uint64_t i = 0; i < depth; ++i) storage.push_back(make_closure(i));
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < depth; ++i) d.push(&storage[i]);
    while (Closure* c = d.pop_for_execution()) benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ReadyDequeDeepLifo)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChaseLevDeep(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  ChaseLevDeque<Closure> d;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < depth; ++i) d.push(make_closure(i));
    while (auto c = d.pop()) benchmark::DoNotOptimize(*c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ChaseLevDeep)->Arg(16)->Arg(256)->Arg(4096);

// ---- Tracing overhead: the full WorkerCore spawn/execute hot path with the
// observability hooks detached vs attached vs runtime-disabled.
//
// The benchmark arg is the task grain: rounds of an integer mix inside each
// leaf body.  Grain 0 is the bare-scheduler worst case and documents the
// absolute per-event cost (a few clock reads + wait-free ring pushes per
// task — tracing an *empty* task can never be free).  Grain 4096 (~7 us)
// is still far below real task bodies (pfold/fib leaves run tens of
// microseconds to milliseconds), and is where the <5% acceptance target is
// evaluated.  The disabled row must match the detached row at every grain:
// the runtime switch is checked before any clock read.

void spawn_execute_burst(WorkerCore& core, TaskId leaf, std::uint64_t n,
                         std::int64_t grain) {
  for (std::uint64_t i = 0; i < n; ++i) {
    core.spawn(leaf, {Value(grain)}, ContRef{ClosureId{}, 0, net::NodeId{0}},
               0);
  }
  while (auto c = core.pop_for_execution()) core.execute(*c);
}

TaskRegistry& leaf_registry() {
  static TaskRegistry registry = [] {
    TaskRegistry r;
    r.add("leaf", [](Context&, Closure& c) {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL;
      const std::int64_t rounds = c.args[0].as_int();
      for (std::int64_t i = 0; i < rounds; ++i) {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
      }
      benchmark::DoNotOptimize(x);
    });
    r.add("sum2", [](Context& cx, Closure& c) {
      cx.send(c.cont, Value(c.args[0].as_int() + c.args[1].as_int()));
    });
    return r;
  }();
  return registry;
}

WorkerCore::Hooks null_hooks() {
  WorkerCore::Hooks hooks;
  hooks.send_remote = [](const ContRef&, Value) {};
  return hooks;
}

void BM_WorkerCoreSpawnExecute(benchmark::State& state) {
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  WorkerCore core(net::NodeId{0}, registry, null_hooks());
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_WorkerCoreSpawnExecute)->Arg(0)->Arg(4096);

void BM_WorkerCoreSpawnExecuteHeapMode(benchmark::State& state) {
  // The seed allocation behavior: no pool, eager ids.  The delta against
  // BM_WorkerCoreSpawnExecute is what the pooled hot path buys.
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  CoreOptions options;
  options.lazy_spawn = false;
  options.pooled_alloc = false;
  WorkerCore core(net::NodeId{0}, registry, null_hooks(), options);
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_WorkerCoreSpawnExecuteHeapMode)->Arg(0)->Arg(4096);

void BM_WorkerCoreSpawnExecuteTraced(benchmark::State& state) {
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  WorkerCore core(net::NodeId{0}, registry, null_hooks());
  obs::Tracer tracer;
  obs::SteadyClock clock;
  core.set_trace(tracer.shard(0), &clock);
  // Drain outside the timed region (every 256 bursts stays well under the
  // ring capacity) so the producer is measured on the normal push path, not
  // the ring-full drop path, and no consumer thread perturbs the numbers.
  int since_drain = 0;
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
    if (++since_drain == 256) {
      state.PauseTiming();
      benchmark::DoNotOptimize(tracer.collect().size());
      state.ResumeTiming();
      since_drain = 0;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["dropped"] =
      static_cast<double>(tracer.total_dropped());
}
BENCHMARK(BM_WorkerCoreSpawnExecuteTraced)->Arg(0)->Arg(4096);

void BM_WorkerCoreSpawnExecuteTracerDisabled(benchmark::State& state) {
  // Shard attached but the runtime switch is off: the cost of the hooks when
  // a tracer exists but tracing is not enabled for this run.
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  WorkerCore core(net::NodeId{0}, registry, null_hooks());
  obs::Tracer tracer;
  obs::SteadyClock clock;
  core.set_trace(tracer.shard(0), &clock);
  tracer.set_enabled(false);
  for (auto _ : state) {
    spawn_execute_burst(core, leaf, 64, state.range(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_WorkerCoreSpawnExecuteTracerDisabled)->Arg(0)->Arg(4096);

// ---- BENCH_deque_micro.json: the gated hot-path numbers. ------------------
//
// Wall-clock ns/task is machine-dependent, so the artifact also carries a
// pure-ALU calibration loop; the perf gate compares the ratio
// ns_per_task / calibration.ns_per_op, which is stable across hosts of the
// same architecture generation.

double calibration_ns_per_op() {
  constexpr std::uint64_t kOps = 1u << 24;
  volatile std::uint64_t sink = 0;
  const double secs = bench::time_best_of(3, [&] {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
    }
    sink = x;
  });
  (void)sink;
  return secs * 1e9 / static_cast<double>(kOps);
}

double spawn_execute_ns_per_task(const CoreOptions* options) {
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  constexpr std::uint64_t kBursts = 4096, kBurst = 64;
  const double secs = bench::time_best_of(5, [&] {
    WorkerCore core =
        options != nullptr
            ? WorkerCore(net::NodeId{0}, registry, null_hooks(), *options)
            : WorkerCore(net::NodeId{0}, registry, null_hooks());
    for (std::uint64_t b = 0; b < kBursts; ++b) {
      spawn_execute_burst(core, leaf, kBurst, 0);
    }
  });
  return secs * 1e9 / static_cast<double>(kBursts * kBurst);
}

double join_fill_ns_per_task() {
  // The other half of a fork/join app's task budget: create a 2-slot join,
  // fill both slots (local sends through the waiting table), execute it.
  TaskRegistry& registry = leaf_registry();
  const TaskId sum2 = registry.id_of("sum2");
  constexpr std::uint64_t kJoins = 1u << 17;
  const ContRef away{ClosureId{net::NodeId{1}, 1}, 0, net::NodeId{1}};
  const double secs = bench::time_best_of(5, [&] {
    WorkerCore core(net::NodeId{0}, registry, null_hooks());
    for (std::uint64_t i = 0; i < kJoins; ++i) {
      const ClosureId join = core.create_waiting(sum2, 2, away, 0);
      core.send_argument(core.slot_ref(join, 0), Value(std::int64_t{1}));
      core.send_argument(core.slot_ref(join, 1), Value(std::int64_t{2}));
      auto c = core.pop_for_execution();
      core.execute(*c);
    }
  });
  return secs * 1e9 / static_cast<double>(kJoins);
}

double steal_serve_ns_per_task() {
  // Victim side of a batched steal, including materialization and the redo
  // ledger, plus the thief-side install.
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  constexpr std::uint64_t kTasks = 4096;
  const double secs = bench::time_best_of(5, [&] {
    WorkerCore victim(net::NodeId{0}, registry, null_hooks());
    WorkerCore thief(net::NodeId{1}, registry, null_hooks());
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      victim.spawn(leaf, {Value(std::int64_t{0})},
                   ContRef{ClosureId{}, 0, net::NodeId{0}}, 0);
    }
    while (victim.has_ready()) {
      auto batch = victim.try_steal_batch(net::NodeId{1}, 8);
      for (Closure& c : batch) thief.install_stolen(std::move(c));
    }
    while (auto c = thief.pop_for_execution()) thief.execute(*c);
  });
  return secs * 1e9 / static_cast<double>(kTasks);
}

double steal_concurrent_ns_per_task() {
  // Thief side of the no-victim-lock protocol: CAS-claim from the victim's
  // Chase–Lev deque, copy the closure out, park the slot for the victim to
  // reclaim.  Measured single-threaded so the number is a stable latency
  // (contention behavior belongs to the TSan steal-churn stress, not a
  // gated metric); includes the thief-side install and the victim's slot
  // reclamation, so it is the full per-task cost of a concurrent steal.
  TaskRegistry& registry = leaf_registry();
  const TaskId leaf = registry.id_of("leaf");
  constexpr std::uint64_t kTasks = 4096;
  CoreOptions lockfree;
  lockfree.lockfree_deque = true;
  const double secs = bench::time_best_of(5, [&] {
    WorkerCore victim(net::NodeId{0}, registry, null_hooks(), lockfree);
    WorkerCore thief(net::NodeId{1}, registry, null_hooks(), lockfree);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      victim.spawn(leaf, {Value(std::int64_t{0})},
                   ContRef{ClosureId{}, 0, net::NodeId{0}}, 0);
    }
    std::vector<Closure> loot;
    for (;;) {
      loot.clear();
      if (victim.steal_concurrent(loot, 8) == 0) break;
      for (Closure& c : loot) thief.install_stolen(std::move(c));
      victim.reclaim_stolen_slots();
    }
    // The fused LIFO register is deliberately out of thieves' reach; the
    // victim runs what is left so every spawned task executes.
    while (auto c = victim.pop_for_execution()) victim.execute(*c);
    while (auto c = thief.pop_for_execution()) thief.execute(*c);
  });
  return secs * 1e9 / static_cast<double>(kTasks);
}

void emit_deque_micro_report() {
  obs::BenchReport report("deque_micro");
  const double cal = calibration_ns_per_op();
  const double pooled = spawn_execute_ns_per_task(nullptr);
  CoreOptions heap;
  heap.lazy_spawn = false;
  heap.pooled_alloc = false;
  const double heap_ns = spawn_execute_ns_per_task(&heap);
  const double join = join_fill_ns_per_task();
  const double steal = steal_serve_ns_per_task();
  const double steal_cl = steal_concurrent_ns_per_task();
  report.set("calibration.ns_per_op", cal);
  report.set("spawn_execute.ns_per_task", pooled);
  report.set("spawn_execute_heap.ns_per_task", heap_ns);
  report.set("join_fill.ns_per_task", join);
  report.set("steal_serve.ns_per_task", steal);
  report.set("steal_concurrent.ns_per_task", steal_cl);
  report.set("spawn_execute.ops_per_calibration_op", pooled / cal);
  report.set("join_fill.ops_per_calibration_op", join / cal);
  report.set("steal_serve.ops_per_calibration_op", steal / cal);
  report.set("steal_concurrent.ops_per_calibration_op", steal_cl / cal);
  report.write();
  bench::kv("deque_micro.calibration.ns_per_op", cal);
  bench::kv("deque_micro.spawn_execute.ns_per_task", pooled);
  bench::kv("deque_micro.spawn_execute_heap.ns_per_task", heap_ns);
  bench::kv("deque_micro.join_fill.ns_per_task", join);
  bench::kv("deque_micro.steal_serve.ns_per_task", steal);
  bench::kv("deque_micro.steal_concurrent.ns_per_task", steal_cl);
}

}  // namespace
}  // namespace phish

int main(int argc, char** argv) {
  phish::emit_deque_micro_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
