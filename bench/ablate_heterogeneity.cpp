// Extension bench — heterogeneous CPU speeds (the paper's Section 6 future
// work: "we are already working on some extension of our theoretical
// work-stealing results to incorporate network heterogeneity ... almost all
// microprocessors manufactured today are within a single order of magnitude
// of each other").
//
// Work stealing needs no configuration to balance heterogeneous CPUs: fast
// machines drain their queues sooner, steal more, and end up executing more
// tasks.  This bench runs pfold on a mixed-speed cluster and reports how the
// executed-task share tracks the CPU-speed share.
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 15));
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 5));
  reject_unknown_flags(flags);

  banner("Extension", "heterogeneous workstation speeds (paper future work)");

  // 8 workstations: two fast (2.0x), four standard (1.0x), two slow (0.5x).
  const double speeds[] = {2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5};
  constexpr int kP = 8;
  double total_speed = 0.0;
  for (double s : speeds) total_speed += s;

  // SimCluster applies one SimWorkerParams to all workers, so build the
  // cluster by hand... or simply run per-speed via cpu_speed?  SimCluster
  // lacks per-worker speeds; emulate with two runs: homogeneous baseline and
  // a manual cluster.
  TaskRegistry registry;
  const TaskId root = apps::register_pfold(registry, cutoff);

  sim::Simulator simulator;
  net::SimNetwork network(simulator, {});
  net::SimTimerService timers(simulator);
  net::RpcNode ch_rpc(network.channel(net::NodeId{0}), timers);
  ClearinghouseConfig ch_cfg;
  ch_cfg.detect_failures = false;
  Clearinghouse clearinghouse(ch_rpc, timers, ch_cfg);
  clearinghouse.start();

  std::vector<std::unique_ptr<rt::SimWorker>> workers;
  for (int i = 0; i < kP; ++i) {
    rt::SimWorkerParams params;
    params.heartbeat_period = 0;
    params.update_period = 0;
    params.cpu_speed = speeds[i];
    workers.push_back(std::make_unique<rt::SimWorker>(
        simulator, network, timers, registry,
        net::NodeId{static_cast<std::uint32_t>(i + 1)},
        std::vector<net::NodeId>{net::NodeId{0}}, params,
        1234 + static_cast<std::uint64_t>(i)));
  }
  workers[0]->set_root(root, {Value(std::int64_t{polymer})});
  for (int i = 0; i < kP; ++i) {
    simulator.schedule_at(static_cast<sim::SimTime>(i), [&, i] {
      workers[i]->start();
    });
  }
  while (!clearinghouse.result().has_value()) {
    simulator.run_until(simulator.now() + 100 * sim::kMillisecond);
    if (simulator.now() > 36'000 * sim::kSecond) {
      std::fprintf(stderr, "heterogeneity bench: job did not complete\n");
      return 1;
    }
  }
  simulator.run_until(simulator.now() + sim::kSecond);

  std::uint64_t total_tasks = 0;
  for (const auto& w : workers) total_tasks += w->stats().tasks_executed;

  TextTable table({"worker", "cpu speed", "speed share", "tasks executed",
                   "task share"});
  for (int i = 0; i < kP; ++i) {
    const double speed_share = speeds[i] / total_speed;
    const double task_share =
        static_cast<double>(workers[i]->stats().tasks_executed) /
        static_cast<double>(total_tasks);
    table.add_row({"w" + std::to_string(i), TextTable::num(speeds[i], 1),
                   TextTable::num(speed_share, 3),
                   TextTable::num(workers[i]->stats().tasks_executed),
                   TextTable::num(task_share, 3)});
    kv("hetero.w" + std::to_string(i) + ".task_share", task_share);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: task share tracks speed share with no tuning — "
              "idle-initiated stealing self-balances heterogeneous CPUs.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
