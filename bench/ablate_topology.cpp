// Extension bench — heterogeneous network topology and locality-aware
// stealing (the paper's Section 6 future work):
//
// "Our new scheduling techniques attempt to preserve locality with respect
// to those network cuts that have the least bandwidth."
//
// Setup: two clusters of workstations joined by a slow wide-area link
// (higher latency, lower bandwidth).  We compare the paper's uniform-random
// victim selection against the cluster-local policy (steal inside your
// cluster; cross the cut only after repeated local failures) and report the
// traffic over the weak cut and the job time.
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "bench_util.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int polymer = static_cast<int>(flags.get_int("polymer", 16));
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 6));
  const int per_cluster = static_cast<int>(flags.get_int("per_cluster", 4));
  const double wan_latency_ms = flags.get_double("wan_latency_ms", 20.0);
  const double wan_bandwidth_kbs = flags.get_double("wan_bandwidth_kbs", 125);
  reject_unknown_flags(flags);

  banner("Extension", "two-cluster network, locality-aware stealing (paper "
                      "future work)");
  std::printf("pfold(%d), 2 clusters x %d workstations; WAN cut: %.0f ms "
              "latency, %.0f KB/s\n\n",
              polymer, per_cluster, wan_latency_ms, wan_bandwidth_kbs);

  const struct {
    rt::VictimPolicy policy;
    const char* label;
    const char* key;
  } kPolicies[] = {
      {rt::VictimPolicy::kUniformRandom, "uniform random (paper)", "random"},
      {rt::VictimPolicy::kClusterLocal, "cluster-local (extension)", "local"},
  };

  TextTable table({"victim policy", "avg time (s)", "cut crossings",
                   "total messages", "steals"});
  for (const auto& p : kPolicies) {
    TaskRegistry registry;
    const TaskId root = apps::register_pfold(registry, cutoff);
    rt::SimJobConfig job;
    job.participants = 2 * per_cluster;
    job.seed = 29;
    job.clearinghouse.detect_failures = false;
    job.worker.heartbeat_period = 0;
    job.worker.update_period = 0;
    job.worker.victim_policy = p.policy;
    job.net.inter_cluster_latency =
        static_cast<sim::SimTime>(wan_latency_ms * 1e6);
    job.net.inter_cluster_bytes_per_second = wan_bandwidth_kbs * 1e3;
    job.worker_clusters.assign(static_cast<std::size_t>(2 * per_cluster), 0);
    for (int i = per_cluster; i < 2 * per_cluster; ++i) {
      job.worker_clusters[static_cast<std::size_t>(i)] = 1;
    }
    const auto result = rt::run_sim_job(registry, root,
                                        {Value(std::int64_t{polymer})}, job);
    table.add_row({p.label,
                   TextTable::num(result.average_participant_seconds, 3),
                   TextTable::num(result.inter_cluster_messages),
                   TextTable::num(result.messages_sent),
                   TextTable::num(result.aggregate.tasks_stolen_by_me)});
    kv(std::string("topo.") + p.key + ".avg_seconds",
       result.average_participant_seconds);
    kv(std::string("topo.") + p.key + ".cut_crossings",
       result.inter_cluster_messages);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: cluster-local stealing sends far less traffic "
              "over the weak cut while matching (or beating) the flat "
              "policy's time.  Note the Clearinghouse sits in cluster 0, so "
              "cluster 1's control traffic always crosses once per "
              "register/unregister.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
