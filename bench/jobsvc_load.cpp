// PhishJobD load bench — open-loop job-submission sweep (DESIGN.md §11.5).
//
// Drives the full multi-tenant stack in virtual time: an open-loop arrival
// process submits jobs through JobService admission control; admitted jobs
// flow through MacroServiceBackend into a simulated Phish network (PhishJobQ
// under weighted fair share, a PhishJobManager per workstation, migration on
// preemption).  Two tenants share the pool — "batch" (weight 1, low
// priority, the bulk of the arrivals) and "interactive" (weight 2, high
// priority, occasional) — so the run exercises fair share, preemption, and
// backpressure together.
//
// Reported (BENCH_jobsvc.json):
//   * sustained jobs/sec (completions over the busy interval, virtual time);
//   * rejection rate (admission control under the offered load);
//   * p50/p99 submit-to-first-task latency (first workstation joins);
//   * preemptions issued / workers evicted.
//
// Conservation gate (the CI smoke leg): every accepted job must complete —
// accepted == completed + cancelled and completed > 0 — else exit nonzero.
// Virtual time makes the whole thing deterministic for a fixed seed.
#include <cmath>
#include <cstdio>

#include "apps/fib/fib.hpp"
#include "bench_util.hpp"
#include "jobsvc/service.hpp"
#include "obs/bench_report.hpp"
#include "obs/clock.hpp"
#include "runtime/simdist/macro_service.hpp"
#include "util/rng.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const int jobs = static_cast<int>(flags.get_int("jobs", smoke ? 40 : 150));
  const double rate = flags.get_double("rate", 4.0);  // offered jobs/sec
  const int workstations =
      static_cast<int>(flags.get_int("workstations", 8));
  const int fib_n = static_cast<int>(flags.get_int("fib", 14));
  const int max_active =
      static_cast<int>(flags.get_int("max-active", workstations));
  const int max_backlog = static_cast<int>(flags.get_int("max-backlog", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 42));
  reject_unknown_flags(flags);

  banner("PhishJobD load", "open-loop multi-tenant submission sweep "
                           "(virtual time)");
  std::printf("%d jobs at %.1f jobs/s offered, %d workstations, "
              "fib(%d) payload, max_active=%d max_backlog=%d\n\n",
              jobs, rate, workstations, fib_n, max_active, max_backlog);

  obs::Registry::global().reset();

  TaskRegistry registry;
  apps::register_fib(registry, /*sequential_cutoff=*/8);

  rt::MacroConfig cfg;
  cfg.assign_policy = JobAssignPolicy::kFairShare;
  cfg.tenants["batch"] = TenantConfig{1.0};
  cfg.tenants["interactive"] = TenantConfig{2.0};
  cfg.clearinghouse.detect_failures = false;
  cfg.manager.job_poll = sim::kSecond;
  cfg.manager.owner_poll = 200 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 2 * sim::kSecond;
  cfg.worker.max_failed_steals = 50;
  cfg.seed = seed;
  cfg.max_sim_time = 4 * 3'600 * sim::kSecond;
  rt::MacroCluster cluster(registry, cfg);
  for (int i = 0; i < workstations; ++i) {
    cluster.add_workstation(rt::OwnerTrace::always_idle());
  }

  const obs::VirtualClock<sim::Simulator> clock(cluster.simulator());
  rt::MacroServiceBackend backend(cluster);
  jobsvc::ServiceConfig svc_cfg;
  svc_cfg.max_active = static_cast<std::size_t>(max_active);
  svc_cfg.max_backlog = static_cast<std::size_t>(max_backlog);
  jobsvc::JobService service(clock, backend, svc_cfg);
  backend.bind(service);
  {
    jobsvc::TenantPolicy batch;
    batch.weight = 1.0;
    service.configure_tenant("batch", batch);
    jobsvc::TenantPolicy interactive;
    interactive.weight = 2.0;
    service.configure_tenant("interactive", interactive);
  }

  // Open-loop arrivals: exponential interarrival times at the offered rate;
  // every 5th job is the interactive tenant at high priority.
  Xoshiro256 rng(seed);
  sim::SimTime at = sim::kSecond;
  sim::SimTime last_arrival = at;
  for (int i = 0; i < jobs; ++i) {
    const bool interactive = (i % 5) == 4;
    cluster.simulator().schedule_at(at, [&service, fib_n, interactive] {
      jobsvc::SubmitRequest req;
      req.tenant = interactive ? "interactive" : "batch";
      req.priority = interactive ? kPriorityHigh : kPriorityLow;
      req.root_task = "fib.task";
      req.args.emplace_back(static_cast<std::int64_t>(fib_n));
      service.submit(std::move(req));
    });
    last_arrival = at;
    const double u = rng.uniform();
    at += static_cast<sim::SimTime>(
        -std::log(u > 1e-12 ? u : 1e-12) / rate * sim::kSecond);
  }

  // Run until the service drains (all arrivals fired, nothing in flight).
  for (;;) {
    cluster.run_until(cluster.simulator().now() + sim::kSecond);
    if (cluster.simulator().now() > cfg.max_sim_time) {
      std::printf("FAILED: load did not drain before the time cap\n");
      return 1;
    }
    if (cluster.simulator().now() > last_arrival &&
        service.pending_jobs() == 0 && service.active_jobs() == 0) {
      break;
    }
  }
  cluster.run_until(cluster.simulator().now() + 5 * sim::kSecond);

  const auto counters = service.counters();
  const auto jq = cluster.jobq().stats();
  std::uint64_t preempted_workers = 0;
  for (int i = 0; i < cluster.workstations(); ++i) {
    preempted_workers += cluster.manager(i).stats().workers_preempted;
  }
  const double busy_s =
      sim::to_seconds(cluster.simulator().now()) - 1.0;  // first arrival at 1s
  const double jobs_per_sec =
      busy_s > 0 ? static_cast<double>(counters.completed) / busy_s : 0.0;
  const double rejection_rate =
      counters.submitted > 0
          ? static_cast<double>(counters.submitted - counters.accepted) /
                static_cast<double>(counters.submitted)
          : 0.0;
  const auto first_task =
      obs::Registry::global()
          .histogram("jobsvc.submit_to_first_task_ns")
          .summarize();

  std::printf("submitted  %8llu\n", (unsigned long long)counters.submitted);
  std::printf("accepted   %8llu\n", (unsigned long long)counters.accepted);
  std::printf("rejected   %8llu  (rate %llu, quota %llu, backlog %llu)\n",
              (unsigned long long)(counters.submitted - counters.accepted),
              (unsigned long long)counters.rejected_rate,
              (unsigned long long)counters.rejected_quota,
              (unsigned long long)counters.rejected_backlog);
  std::printf("completed  %8llu\n", (unsigned long long)counters.completed);
  std::printf("preempt    %8llu issued, %llu workers evicted\n",
              (unsigned long long)jq.preemptions,
              (unsigned long long)preempted_workers);
  std::printf("throughput %8.2f jobs/s sustained (offered %.2f)\n",
              jobs_per_sec, rate);
  std::printf("first-task p50 %.1f ms, p99 %.1f ms\n\n",
              first_task.quantile(0.5) / 1e6,
              first_task.quantile(0.99) / 1e6);

  kv("jobs_per_sec", jobs_per_sec);
  kv("rejection_rate", rejection_rate);
  kv("completed", counters.completed);
  kv("preemptions", jq.preemptions);
  kv("first_task_p50_ns", first_task.quantile(0.5));
  kv("first_task_p99_ns", first_task.quantile(0.99));

  obs::BenchReport report("jobsvc");
  report.set("jobs", jobs);
  report.set("offered_rate", rate);
  report.set("workstations", workstations);
  report.set("seed", seed);
  report.set("submitted", counters.submitted);
  report.set("accepted", counters.accepted);
  report.set("rejected_rate_limited", counters.rejected_rate);
  report.set("rejected_quota", counters.rejected_quota);
  report.set("rejected_backlog", counters.rejected_backlog);
  report.set("completed", counters.completed);
  report.set("cancelled", counters.cancelled);
  report.set("jobs_per_sec", jobs_per_sec);
  report.set("rejection_rate", rejection_rate);
  report.set("preemptions_issued", jq.preemptions);
  report.set("workers_preempted", preempted_workers);
  report.set_histogram("submit_to_first_task_ns", first_task);
  report.set_histogram("turnaround_ns",
                       obs::Registry::global()
                           .histogram("jobsvc.turnaround_ns")
                           .summarize());
  report.set_metrics(obs::Registry::global().snapshot());
  report.write();

  // Conservation: an accepted job is a promise — it must complete (or be
  // cancelled, which this bench never does).  Lost jobs fail the run.
  if (counters.completed == 0 ||
      counters.accepted != counters.completed + counters.cancelled) {
    std::printf("FAILED: job conservation violated (accepted %llu vs "
                "completed %llu + cancelled %llu)\n",
                (unsigned long long)counters.accepted,
                (unsigned long long)counters.completed,
                (unsigned long long)counters.cancelled);
    return 1;
  }
  std::printf("OK: all %llu accepted jobs completed\n",
              (unsigned long long)counters.completed);
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
