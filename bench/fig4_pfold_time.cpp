// Figure 4 — average execution time of pfold vs number of participants.
//
// Paper: "Average execution time of the Phish pfold application running on a
// network of SparcStation 1's versus the number of participants", with the
// average over the P participants' wall-clock lifetimes.  The curve falls
// roughly as 1/P (the paper's 1->32 sweep went from ~600 s to ~20 s).
//
// Shape targets: monotone decrease, near-1/P through P=16, visible droop at
// P=32 as fixed startup overheads (registration) stop amortizing.
#include <cstdio>

#include "bench_util.hpp"
#include "obs/trace_file.hpp"
#include "pfold_sweep.hpp"

namespace phish::bench {
namespace {

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const PfoldSweepConfig cfg = sweep_config_from_flags(flags);
  const auto participants =
      flags.get_int_list("participants", {1, 2, 4, 8, 16, 24, 32});
  // Optional: write a trace of the last sweep point.  A *.json path gets
  // Chrome/Perfetto JSON directly; anything else gets the binary .phtrace
  // container for the phish-trace CLI.
  const std::string trace_path = flags.get_string("trace", "");
  reject_unknown_flags(flags);

  banner("Figure 4", "pfold average execution time vs participants (simulated "
                     "workstation network)");
  std::printf("polymer=%d monomers, grain cutoff=%d\n\n", cfg.polymer,
              cfg.cutoff);

  obs::BenchReport report("fig4_pfold_time");
  report.set("runtime", "simdist");
  report.set("seed", cfg.seed);
  report.set("polymer", cfg.polymer);
  report.set("cutoff", cfg.cutoff);
  report.set("failures", cfg.inject_failures ? 1 : 0);
  if (cfg.inject_failures) {
    std::printf("failure injection ON: primary Clearinghouse crash at 500 ms, "
                "worker 1 crash at 300 ms + rejoin at 2 s (P>2), worker 2 "
                "reclaim at 250 ms + rejoin at 2.5 s (P>3)\n\n");
  }

  TextTable table({"P", "avg time (s)", "makespan (s)", "tasks", "steals"});
  double t1 = 0.0;
  for (std::int64_t p : participants) {
    obs::Tracer tracer;
    const bool trace_this =
        !trace_path.empty() && p == participants.back();
    RecoveryTracker::Snapshot recovery;
    const auto result = run_pfold_at(cfg, static_cast<int>(p),
                                     trace_this ? &tracer : nullptr,
                                     cfg.inject_failures ? &recovery : nullptr);
    if (p == 1) t1 = result.average_participant_seconds;
    table.add_row({TextTable::num(static_cast<std::int64_t>(p)),
                   TextTable::num(result.average_participant_seconds, 3),
                   TextTable::num(result.makespan_seconds, 3),
                   TextTable::num(result.aggregate.tasks_executed),
                   TextTable::num(result.aggregate.tasks_stolen_by_me)});
    kv("fig4.P" + std::to_string(p) + ".avg_seconds",
       result.average_participant_seconds);
    report_sim_result(report, "P" + std::to_string(p), result);
    if (cfg.inject_failures) {
      report_recovery(report, "P" + std::to_string(p), recovery);
      kv("fig4.P" + std::to_string(p) + ".recovery.mttr_ns",
         recovery.last_mttr_ns);
    }
    if (trace_this) {
      obs::TraceData data;
      data.runtime = "simdist";
      data.clock = obs::ClockDomain::kVirtual;
      data.seed = cfg.seed + static_cast<std::uint64_t>(p);
      data.participants = static_cast<std::uint32_t>(p);
      data.take_from(tracer);
      const bool json = trace_path.size() > 5 &&
                        trace_path.rfind(".json") == trace_path.size() - 5;
      const bool ok = json ? obs::write_chrome_trace(trace_path, data)
                           : obs::write_trace_file(trace_path, data);
      if (ok) std::printf("ARTIFACT %s\n", trace_path.c_str());
    }
  }
  std::printf("%s", table.to_string().c_str());
  if (t1 > 0.0) {
    std::printf("\nreference: perfect scaling would reach T1/32 = %.3f s at "
                "P=32\n", t1 / 32.0);
  }
  report.set_metrics(obs::Registry::global().snapshot());
  report.write();
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
