// Ablation A1 — local execution order: LIFO (the paper's choice) vs FIFO.
//
// The paper's memory-locality argument: "executing tasks in LIFO order
// preserves memory locality by keeping the process's working set small".
// This bench quantifies it: the same computations run under both disciplines
// and we report "max tasks in use" (the Table 2 working-set statistic).
// LIFO is O(spawn depth); FIFO is breadth-first and explodes to O(tree
// width).
#include <cstdio>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "core/local_runner.hpp"

namespace phish::bench {
namespace {

struct Workload {
  std::string name;
  std::function<void(LocalRunner&)> run;
};

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::int64_t fib_n = flags.get_int("fib_n", 20);
  const std::int64_t pfold_n = flags.get_int("pfold_n", 13);
  const std::int64_t nqueens_n = flags.get_int("nqueens_n", 9);
  reject_unknown_flags(flags);

  banner("Ablation A1", "LIFO vs FIFO local execution order -> working set");

  TextTable table({"workload", "order", "tasks executed", "max tasks in use",
                   "ratio vs LIFO"});

  auto measure = [&](const std::string& name, const TaskRegistry& reg,
                     TaskId root, std::vector<Value> args) {
    std::uint64_t lifo_in_use = 0;
    for (ExecOrder order : {ExecOrder::kLifo, ExecOrder::kFifo}) {
      LocalRunner runner(reg, order, StealOrder::kFifo);
      auto a = args;
      runner.run(root, std::move(a));
      const auto& s = runner.stats();
      const char* label = order == ExecOrder::kLifo ? "LIFO" : "FIFO";
      if (order == ExecOrder::kLifo) lifo_in_use = s.max_tasks_in_use;
      const double ratio =
          static_cast<double>(s.max_tasks_in_use) /
          static_cast<double>(lifo_in_use ? lifo_in_use : 1);
      table.add_row({name, label, TextTable::num(s.tasks_executed),
                     TextTable::num(s.max_tasks_in_use),
                     TextTable::num(ratio, 1)});
      kv("a1." + name + "." + label + ".max_in_use", s.max_tasks_in_use);
    }
  };

  {
    TaskRegistry reg;
    const TaskId root = apps::register_fib(reg);
    measure("fib" + std::to_string(fib_n), reg, root, {Value(fib_n)});
  }
  {
    TaskRegistry reg;
    const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/4);
    measure("pfold" + std::to_string(pfold_n), reg, root, {Value(pfold_n)});
  }
  {
    TaskRegistry reg;
    const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/2);
    measure("nqueens" + std::to_string(nqueens_n), reg, root,
            {Value(nqueens_n)});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected: FIFO working set 10-1000x the LIFO one; the paper"
              "'s scheduler is the LIFO column.\n");
  return 0;
}

}  // namespace
}  // namespace phish::bench

int main(int argc, char** argv) { return phish::bench::run(argc, argv); }
