// Microbenchmarks of the wire layer (google-benchmark): closure and message
// serialization, and the end-to-end simulated message path.  These set the
// scale for the cost model defaults in SimNetParams.
#include <benchmark/benchmark.h>

#include "core/closure.hpp"
#include "core/protocol.hpp"
#include "net/sim_net.hpp"

namespace phish {
namespace {

Closure sample_closure() {
  Closure c;
  c.id = ClosureId{net::NodeId{3}, 123456};
  c.task = 7;
  c.cont = ContRef{ClosureId{net::NodeId{1}, 42}, 1, net::NodeId{1}};
  c.args = {Value(std::int64_t{5}), Value(2.5), Value(Bytes(64))};
  c.depth = 12;
  return c;
}

void BM_ClosureEncode(benchmark::State& state) {
  const Closure c = sample_closure();
  for (auto _ : state) {
    Writer w;
    c.encode(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_ClosureEncode);

void BM_ClosureDecode(benchmark::State& state) {
  Writer w;
  sample_closure().encode(w);
  const Bytes bytes = w.take();
  for (auto _ : state) {
    Reader r(bytes);
    Closure c = Closure::decode(r);
    benchmark::DoNotOptimize(c.id.seq);
  }
}
BENCHMARK(BM_ClosureDecode);

void BM_ArgumentMsgRoundTrip(benchmark::State& state) {
  const proto::ArgumentMsg msg{
      ContRef{ClosureId{net::NodeId{1}, 9}, 0, net::NodeId{1}},
      Value(std::int64_t{77})};
  for (auto _ : state) {
    const Bytes b = msg.encode();
    auto back = proto::ArgumentMsg::decode(b);
    benchmark::DoNotOptimize(back->cont.slot);
  }
}
BENCHMARK(BM_ArgumentMsgRoundTrip);

void BM_SimNetworkMessagePath(benchmark::State& state) {
  // Cost of one simulated send+deliver, including the event queue.
  sim::Simulator simulator;
  net::SimNetParams params;
  params.jitter = 0;
  net::SimNetwork network(simulator, params);
  auto& a = network.channel(net::NodeId{0});
  auto& b = network.channel(net::NodeId{1});
  std::uint64_t received = 0;
  b.set_receiver([&](net::Message&&) { ++received; });
  for (auto _ : state) {
    a.send(net::NodeId{1}, 1, Bytes(32));
    simulator.run();
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_SimNetworkMessagePath);

void BM_SimulatorScheduleFire(benchmark::State& state) {
  sim::Simulator simulator;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    simulator.schedule(1, [&] { ++fired; });
    simulator.run();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_SimulatorScheduleFire);

}  // namespace
}  // namespace phish

BENCHMARK_MAIN();
