// Shared helpers for the reproduction benches.
//
// Every bench prints (a) a banner naming the paper artifact it regenerates,
// (b) a human-readable table, and (c) machine-readable "key=value" lines
// prefixed with "RESULT " for scripted extraction.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace phish::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void kv(const std::string& key, const std::string& value) {
  std::printf("RESULT %s=%s\n", key.c_str(), value.c_str());
}
inline void kv(const std::string& key, double value) {
  std::printf("RESULT %s=%.6g\n", key.c_str(), value);
}
inline void kv(const std::string& key, std::uint64_t value) {
  std::printf("RESULT %s=%llu\n", key.c_str(),
              static_cast<unsigned long long>(value));
}

/// Best-of-N wall-clock timing of a callable, in seconds.
inline double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    const double s = watch.elapsed_seconds();
    if (s < best) best = s;
  }
  return best;
}

/// Fail loudly on mistyped flags: a typo must not silently run defaults.
inline void reject_unknown_flags(const Flags& flags) {
  const auto unused = flags.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& name : unused) std::fprintf(stderr, " --%s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

}  // namespace phish::bench
