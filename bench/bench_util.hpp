// Shared helpers for the reproduction benches.
//
// Every bench prints (a) a banner naming the paper artifact it regenerates,
// (b) a human-readable table, and (c) machine-readable "key=value" lines
// prefixed with "RESULT " for scripted extraction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace phish::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void kv(const std::string& key, const std::string& value) {
  std::printf("RESULT %s=%s\n", key.c_str(), value.c_str());
}
inline void kv(const std::string& key, double value) {
  std::printf("RESULT %s=%.6g\n", key.c_str(), value);
}
inline void kv(const std::string& key, std::uint64_t value) {
  std::printf("RESULT %s=%llu\n", key.c_str(),
              static_cast<unsigned long long>(value));
}

/// Best-of-N wall-clock timing of a callable, in seconds.
inline double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    const double s = watch.elapsed_seconds();
    if (s < best) best = s;
  }
  return best;
}

/// Best-of-N timing for *short* callables (sub-millisecond), in seconds per
/// call.  A single call is far below the noise floor of a shared host (timer
/// granularity, frequency ramp-up, scheduler jitter), and best-of-N over
/// such a window is biased by whichever rep got lucky — which poisons any
/// ratio built on it.  So: calibrate an iteration count that stretches each
/// timed rep to at least `min_window_s`, then report best-of-N of the
/// per-iteration average.  The calibration pass doubles as warm-up, so the
/// measured reps run at ramped clocks like the long-running benches they
/// are compared against.
/// Calibrate an iteration count that stretches one timed batch of `fn` to
/// at least `min_window_s`.  The probe runs double as warm-up.
inline std::uint64_t scaled_iters(const std::function<void()>& fn,
                                  double min_window_s = 0.02) {
  std::uint64_t iters = 1;
  for (;;) {
    Stopwatch watch;
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double s = watch.elapsed_seconds();
    if (s >= min_window_s) return iters;
    // Jump straight to the projected count (with slack) instead of doubling
    // forever; cap the growth factor so one wild underestimate cannot
    // trigger a near-infinite batch.
    const double factor =
        s > 0 ? std::min(100.0, 1.25 * min_window_s / s) : 100.0;
    iters = static_cast<std::uint64_t>(iters * factor) + 1;
  }
}

inline double time_scaled(int reps, const std::function<void()>& fn,
                          double min_window_s = 0.02) {
  const std::uint64_t iters = scaled_iters(fn, min_window_s);
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    for (std::uint64_t j = 0; j < iters; ++j) fn();
    const double s = watch.elapsed_seconds() / static_cast<double>(iters);
    if (s < best) best = s;
  }
  return best;
}

/// Fail loudly on mistyped flags: a typo must not silently run defaults.
inline void reject_unknown_flags(const Flags& flags) {
  const auto unused = flags.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& name : unused) std::fprintf(stderr, " --%s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

}  // namespace phish::bench
